(* The Rchls_api surface and the serve daemon.

   - QCheck round-trips: [decode (encode r) = Ok r] for every request
     and response value the generators can build — the property the
     .mli files promise.
   - Strict decoding: unknown fields, duplicate keys and foreign
     ["api"] versions are rejected, never defaulted.
   - Response-cache keys: form-independence (a benchmark by name and
     the same graph inline share a key) and parameter sensitivity.
   - Diskcache: round-trip, overwrite, approximate-LRU eviction.
   - Socket tests: a live in-process daemon serving mixed concurrent
     jobs, with payloads asserted byte-identical across worker-domain
     counts, batch sizes and cache tiers, plus the backpressure and
     malformed-input answers. *)

module Request = Rchls_api.Request
module Response = Rchls_api.Response
module Service = Rchls_experiments.Service
module Server = Rchls_serve.Server
module Client = Rchls_serve.Client
module Diskcache = Rchls_util.Diskcache
module Json = Rchls_util.Json
module Telemetry = Rchls_util.Telemetry
module Metrics = Rchls_util.Metrics
module Benchmarks = Rchls_dfg.Benchmarks
module Parse = Rchls_dfg.Parse
module Gen = QCheck2.Gen

let check_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

(* --- generators ------------------------------------------------------ *)

let gen_name = Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 8))
let gen_text = Gen.(string_size ~gen:printable (int_range 0 20))
let gen_opt_id = Gen.(opt gen_name)

let gen_source =
  Gen.(
    oneof
      [
        map (fun s -> Request.Named s) gen_name;
        map (fun s -> Request.Inline s) gen_text;
      ])

let gen_library_source =
  Gen.(
    oneof
      [
        return Request.Lib_default;
        map (fun s -> Request.Lib_file s) gen_name;
        map (fun s -> Request.Lib_inline s) gen_text;
      ])

let gen_strategy =
  Gen.oneofl [ Request.Best; Request.Figure6; Request.Bottom_up ]

let gen_scheduler =
  Gen.oneofl
    [ Request.Density; Request.Density_reference; Request.Force_directed ]

let gen_approach = Gen.oneofl [ Request.Ours; Request.Baseline; Request.Combined ]
let gen_bound = Gen.int_range 0 1000

let gen_synth =
  Gen.(
    map
      (fun (graph, library, ld, ad, strategy, scheduler) ->
        { Request.graph; library; ld; ad; strategy; scheduler })
      (tup6 gen_source gen_library_source gen_bound gen_bound gen_strategy
         gen_scheduler))

let gen_sweep =
  Gen.(
    map
      (fun (graph, library, lds, ads, approach, scheduler) ->
        { Request.graph; library; lds; ads; approach; scheduler })
      (tup6 gen_source gen_library_source
         (list_size (int_range 0 5) gen_bound)
         (list_size (int_range 0 5) gen_bound)
         gen_approach gen_scheduler))

let gen_fuzz =
  Gen.(
    map
      (fun (seed, cases, max_nodes, properties) ->
        { Request.seed; cases; max_nodes; properties })
      (tup4 (int_range 0 10_000) (int_range 1 1000) (int_range 2 20)
         (opt (list_size (int_range 0 3) gen_name))))

let gen_anneal =
  Gen.(
    map
      (fun ((graph, library, ld, ad, strategy, scheduler), (seed, moves, chains, exchange)) ->
        {
          Request.graph;
          library;
          ld;
          ad;
          strategy;
          scheduler;
          seed;
          moves;
          chains;
          exchange;
        })
      (tup2
         (tup6 gen_source gen_library_source gen_bound gen_bound gen_strategy
            gen_scheduler)
         (tup4 (int_range 0 10_000) (int_range 0 10_000) (int_range 1 16)
            (int_range 1 500))))

let gen_job =
  Gen.(
    oneof
      [
        map (fun s -> Request.Synth s) gen_synth;
        map (fun a -> Request.Anneal a) gen_anneal;
        map (fun s -> Request.Sweep s) gen_sweep;
        map (fun s -> Request.Explore s) gen_sweep;
        map (fun s -> Request.Check s) gen_synth;
        map (fun f -> Request.Fuzz f) gen_fuzz;
        return Request.Ping;
        return Request.Stats;
        return Request.Health;
      ])

let gen_request =
  Gen.(map (fun (id, job) -> { Request.id; job }) (tup2 gen_opt_id gen_job))

let gen_summary =
  Gen.(
    map
      (fun (latency, area, reliability, instances) ->
        { Response.latency; area; reliability; instances })
      (tup4 gen_bound gen_bound (float_bound_inclusive 1.)
         (list_size (int_range 0 4) (tup2 gen_name (int_range 1 9)))))

let gen_failure =
  Gen.(
    oneof
      [
        map
          (fun n -> Response.Latency_infeasible { best_achievable = n })
          gen_bound;
        map (fun n -> Response.Area_infeasible { best_achieved = n }) gen_bound;
        map (fun m -> Response.Scheduling_error m) gen_text;
      ])

let gen_design_result =
  Gen.(
    oneof
      [ map Result.ok gen_summary; map Result.error gen_failure ])

let gen_cell =
  Gen.(
    map
      (fun (ld, ad, reliability, area) -> { Response.ld; ad; reliability; area })
      (tup4 gen_bound gen_bound
         (opt (float_bound_inclusive 1.))
         (opt gen_bound)))

let gen_frontier_point =
  Gen.(
    map
      (fun (f_ld, f_ad, f_reliability, f_area) ->
        { Response.f_ld; f_ad; f_reliability; f_area })
      (tup4 gen_bound gen_bound (float_bound_inclusive 1.) gen_bound))

let gen_explore_summary =
  Gen.(
    map
      (fun (points, cells, evaluated, derived) ->
        { Response.points; cells; evaluated; derived })
      (tup4
         (list_size (int_range 0 5) gen_frontier_point)
         gen_bound gen_bound gen_bound))

let gen_fuzz_outcome =
  Gen.(
    map
      (fun (property, cases, failure) -> { Response.property; cases; failure })
      (tup3 gen_name (int_range 0 1000)
         (opt
            (map
               (fun (case, message, shrink_steps, counterexample) ->
                 { Response.case; message; shrink_steps; counterexample })
               (tup4 (int_range 0 100) gen_text (int_range 0 50) gen_text)))))

(* Metric maps round-trip as JSON objects, so the generated names must
   be distinct (the decoder rejects duplicate keys). *)
let gen_metric_map gen_v =
  Gen.(
    map
      (fun pairs ->
        List.mapi (fun i (n, v) -> (Printf.sprintf "%s.%d" n i, v)) pairs)
      (list_size (int_range 0 4) (tup2 gen_name gen_v)))

(* Integral and half-integral floats survive the JSON text form
   exactly, so structural equality is a valid round-trip check. *)
let gen_quantile = Gen.(map (fun n -> float_of_int n /. 2.) gen_bound)

let gen_window_stat =
  Gen.(
    map
      (fun ((count, sum_ns, p50_ns, p90_ns, p99_ns), (max_ns, window_ns)) ->
        { Response.count; sum_ns; p50_ns; p90_ns; p99_ns; max_ns; window_ns })
      (tup2
         (tup5 gen_bound gen_bound gen_quantile gen_quantile gen_quantile)
         (tup2 gen_bound gen_bound)))

let gen_stats =
  Gen.(
    map
      (fun (uptime_ns, counters, gauges, windows) ->
        { Response.uptime_ns; counters; gauges; windows })
      (tup4 gen_bound (gen_metric_map gen_bound) (gen_metric_map gen_bound)
         (gen_metric_map gen_window_stat)))

let gen_health =
  Gen.(
    map
      (fun (healthy, uptime_ns, queue_depth, queue_max, in_flight) ->
        { Response.healthy; uptime_ns; queue_depth; queue_max; in_flight })
      (tup5 bool gen_bound gen_bound gen_bound gen_bound))

let gen_timing =
  Gen.(
    map
      (fun (queue_ns, exec_ns, total_ns) ->
        { Response.queue_ns; exec_ns; total_ns })
      (tup3 gen_bound gen_bound gen_bound))

let gen_payload =
  Gen.(
    oneof
      [
        map (fun r -> Response.Design r) gen_design_result;
        map
          (fun ((greedy, annealed), (a_moves, a_accepted, a_pruned, a_exchanges, a_chains, a_improved)) ->
            Response.Anneal_result
              {
                Response.greedy;
                annealed;
                a_moves;
                a_accepted;
                a_pruned;
                a_exchanges;
                a_chains;
                a_improved;
              })
          (tup2
             (tup2 gen_design_result gen_design_result)
             (tup6 gen_bound gen_bound gen_bound gen_bound (int_range 1 16) bool));
        map
          (fun cells -> Response.Sweep_cells cells)
          (list_size (int_range 0 6) gen_cell);
        map
          (fun (result, violations) -> Response.Check_report { result; violations })
          (tup2 gen_design_result (list_size (int_range 0 3) gen_text));
        map (fun e -> Response.Explore_frontier e) gen_explore_summary;
        map
          (fun os -> Response.Fuzz_report os)
          (list_size (int_range 0 3) gen_fuzz_outcome);
        return Response.Pong;
        map (fun s -> Response.Stats_snapshot s) gen_stats;
        map (fun h -> Response.Health_report h) gen_health;
      ])

let gen_error =
  Gen.(
    map
      (fun (code, message) -> { Response.code; message })
      (tup2
         (oneofl
            [
              Response.Bad_request;
              Response.Unsupported_version;
              Response.Overloaded;
              Response.Internal;
            ])
         gen_text))

let gen_cache_info =
  Gen.(
    map
      (fun (tier, key) -> { Response.tier; key })
      (tup2 (oneofl [ Response.Memory; Response.Disk ]) gen_name))

let gen_response =
  Gen.(
    map
      (fun (id, result, cache, timing) -> { Response.id; result; cache; timing })
      (tup4 gen_opt_id
         (oneof [ map Result.ok gen_payload; map Result.error gen_error ])
         (opt gen_cache_info) (opt gen_timing)))

(* --- codec round-trips ----------------------------------------------- *)

let prop_request_roundtrip =
  QCheck2.Test.make ~name:"request decode (encode r) = r" ~count:500 gen_request
    (fun r -> Request.of_string (Request.to_string r) = Ok r)

let prop_response_roundtrip =
  QCheck2.Test.make ~name:"response decode (encode r) = r" ~count:500
    gen_response (fun r -> Response.of_string (Response.to_string r) = Ok r)

let prop_assemble_raw_matches_encode =
  (* A cache hit splices the stored payload into the envelope by hand;
     the bytes must equal the structured encoder's. *)
  QCheck2.Test.make ~name:"assemble_raw = to_string on ok responses" ~count:300
    Gen.(tup4 gen_opt_id gen_payload (opt gen_cache_info) (opt gen_timing))
    (fun (id, payload, cache, timing) ->
      let structured =
        Response.to_string { Response.id; result = Ok payload; cache; timing }
      in
      let raw =
        Response.assemble_raw ~id ~cache ?timing
          (Json.to_string (Response.payload_to_json payload))
      in
      structured = raw)

(* --- strict decoding -------------------------------------------------- *)

let req_line fields = Printf.sprintf {|{"api":"rchls.api/1",%s}|} fields

let expect_error what line =
  match Request.of_string line with
  | Error e -> e
  | Ok _ -> Alcotest.failf "%s: accepted %s" what line

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let test_unknown_field_rejected () =
  let e =
    expect_error "typo'd param"
      (req_line
         {|"job":"synth","params":{"graph":{"name":"ewf"},"ld":1,"ad":1,"strateggy":"best"}|})
  in
  Alcotest.(check bool) "names the field" true (contains ~affix:"strateggy" e)

let test_duplicate_key_rejected () =
  let e =
    expect_error "duplicate key"
      {|{"api":"rchls.api/1","job":"ping","job":"ping"}|}
  in
  Alcotest.(check bool) "mentions duplicate" true (contains ~affix:"duplicate" e)

let test_version_mismatch_rejected () =
  let e = expect_error "foreign version" {|{"api":"rchls.api/2","job":"ping"}|} in
  Alcotest.(check bool) "canonical message" true
    (contains ~affix:"unsupported schema version" e)

let test_missing_required_rejected () =
  ignore
    (expect_error "missing ld"
       (req_line {|"job":"synth","params":{"graph":{"name":"ewf"},"ad":1}|}));
  ignore (expect_error "missing job" (req_line {|"id":"x"|}))

let test_defaults_applied () =
  let r =
    check_ok "minimal synth"
      (Request.of_string
         (req_line {|"job":"synth","params":{"graph":{"name":"ewf"},"ld":1,"ad":2}|}))
  in
  match r.Request.job with
  | Request.Synth s ->
    Alcotest.(check bool) "defaults" true
      (s.Request.strategy = Request.Best
      && s.Request.scheduler = Request.Density
      && s.Request.library = Request.Lib_default)
  | _ -> Alcotest.fail "decoded to the wrong job"

let test_anneal_decode () =
  (* Annealer knobs default; unknown keys are rejected like any job. *)
  let r =
    check_ok "minimal anneal"
      (Request.of_string
         (req_line {|"job":"anneal","params":{"graph":{"name":"ewf"},"ld":19,"ad":18}|}))
  in
  (match r.Request.job with
  | Request.Anneal a ->
    Alcotest.(check bool) "knob defaults" true
      (a.Request.seed = 1 && a.Request.moves = 2000 && a.Request.chains = 4
      && a.Request.exchange = 50
      && a.Request.strategy = Request.Best
      && a.Request.scheduler = Request.Density)
  | _ -> Alcotest.fail "decoded to the wrong job");
  let e =
    expect_error "typo'd anneal knob"
      (req_line
         {|"job":"anneal","params":{"graph":{"name":"ewf"},"ld":19,"ad":18,"movess":9}|})
  in
  Alcotest.(check bool) "names the field" true (contains ~affix:"movess" e);
  ignore
    (expect_error "anneal requires bounds"
       (req_line {|"job":"anneal","params":{"graph":{"name":"ewf"},"ld":19}|}))

let test_explore_bounds_optional () =
  (* An explore job is a sweep whose bound lists may be omitted — the
     executor then plans the plane itself. *)
  let r =
    check_ok "minimal explore"
      (Request.of_string
         (req_line {|"job":"explore","params":{"graph":{"name":"fig4"}}|}))
  in
  (match r.Request.job with
  | Request.Explore s ->
    Alcotest.(check bool) "bounds empty" true
      (s.Request.lds = [] && s.Request.ads = [])
  | _ -> Alcotest.fail "decoded to the wrong job");
  ignore
    (expect_error "sweep still requires bounds"
       (req_line {|"job":"sweep","params":{"graph":{"name":"fig4"}}|}))

let test_explore_job_executes () =
  let r =
    check_ok "explore request"
      (Request.of_string
         (req_line {|"job":"explore","params":{"graph":{"name":"fig4"}}|}))
  in
  match Service.run_job r.Request.job with
  | Ok (Response.Explore_frontier s) ->
    Alcotest.(check bool) "frontier non-empty" true (s.Response.points <> []);
    Alcotest.(check int) "cells = evaluated + derived" s.Response.cells
      (s.Response.evaluated + s.Response.derived);
    Alcotest.(check bool) "pruning derived cells" true (s.Response.derived > 0);
    List.iter
      (fun (p : Response.frontier_point) ->
        Alcotest.(check bool) "reliability in (0,1]" true
          (p.Response.f_reliability > 0. && p.Response.f_reliability <= 1.))
      s.Response.points
  | Ok _ -> Alcotest.fail "explore returned the wrong payload kind"
  | Error e -> Alcotest.fail e.Response.message

let test_response_unknown_field_rejected () =
  match
    Response.of_string
      {|{"api":"rchls.api/1","status":"ok","result":{"kind":"pong"},"extra":1}|}
  with
  | Error e -> Alcotest.(check bool) "names field" true (contains ~affix:"extra" e)
  | Ok _ -> Alcotest.fail "extra envelope field accepted"

(* --- cache keys ------------------------------------------------------- *)

let synth_job ?(ld = 14) ?(ad = 9) graph =
  Request.Synth
    {
      Request.graph;
      library = Request.Lib_default;
      ld;
      ad;
      strategy = Request.Best;
      scheduler = Request.Density;
    }

let test_cache_key_form_independent () =
  let named =
    check_ok "named" (Service.cache_key (synth_job (Request.Named "ewf")))
  in
  let inline =
    check_ok "inline"
      (Service.cache_key
         (synth_job (Request.Inline (Parse.to_text Benchmarks.ewf))))
  in
  Alcotest.(check bool) "key exists" true (named <> None);
  Alcotest.(check bool) "named = inline" true (named = inline)

let test_cache_key_param_sensitive () =
  let k ld = check_ok "key" (Service.cache_key (synth_job ~ld (Request.Named "ewf"))) in
  Alcotest.(check bool) "ld changes the key" true (k 14 <> k 15);
  let sweep =
    check_ok "sweep key"
      (Service.cache_key
         (Request.Sweep
            {
              Request.graph = Request.Named "ewf";
              library = Request.Lib_default;
              lds = [ 14 ];
              ads = [ 9 ];
              approach = Request.Ours;
              scheduler = Request.Density;
            }))
  in
  Alcotest.(check bool) "job kind changes the key" true
    (sweep <> k 14 && sweep <> None);
  Alcotest.(check (option int)) "ping is never cached" None
    (Option.map (fun _ -> 0) (check_ok "ping" (Service.cache_key Request.Ping)))

(* --- disk cache ------------------------------------------------------- *)

let temp_dir prefix =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir d 0o700;
  d

let test_diskcache_roundtrip () =
  let d = check_ok "open" (Diskcache.open_dir (temp_dir "rchls-dc")) in
  Alcotest.(check (option string)) "miss" None (Diskcache.find d 42L);
  Diskcache.add d 42L "payload-a";
  Alcotest.(check (option string)) "hit" (Some "payload-a") (Diskcache.find d 42L);
  Diskcache.add d 42L "payload-b";
  Alcotest.(check (option string)) "overwrite" (Some "payload-b")
    (Diskcache.find d 42L);
  Alcotest.(check int) "one file" 1 (Diskcache.entries d);
  Alcotest.(check string) "file name" "000000000000002a.json"
    (Diskcache.key_name 42L)

let test_diskcache_evicts_oldest () =
  let d =
    check_ok "open" (Diskcache.open_dir ~max_entries:2 (temp_dir "rchls-dc"))
  in
  Diskcache.add d 1L "one";
  Unix.sleepf 0.02;
  Diskcache.add d 2L "two";
  Unix.sleepf 0.02;
  Diskcache.add d 3L "three";
  Alcotest.(check bool) "bounded" true (Diskcache.entries d <= 2);
  Alcotest.(check (option string)) "newest survives" (Some "three")
    (Diskcache.find d 3L);
  Alcotest.(check (option string)) "oldest evicted" None (Diskcache.find d 1L)

let test_diskcache_survives_reopen () =
  let dir = temp_dir "rchls-dc" in
  let d = check_ok "open" (Diskcache.open_dir dir) in
  Diskcache.add d 7L "persisted";
  let d' = check_ok "reopen" (Diskcache.open_dir dir) in
  Alcotest.(check (option string)) "found after reopen" (Some "persisted")
    (Diskcache.find d' 7L)

(* --- the live daemon -------------------------------------------------- *)

let with_server ?cache_dir ?(domains = 2) ?(batch_max = 4) ?(queue_max = 256) f =
  let socket = Filename.concat (temp_dir "rchls-serve") "s.sock" in
  let config =
    {
      (Server.default_config (Server.Unix_socket socket)) with
      Server.cache_dir;
      domains = Some domains;
      batch_max;
      queue_max;
    }
  in
  let server = check_ok "server start" (Server.start config) in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f socket)

let with_client socket f =
  let c = check_ok "connect" (Client.connect_unix socket) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

(* A mixed workload: synthesis (feasible and infeasible), a sweep, a
   checked synthesis and a ping, all with distinct ids. *)
let workload =
  let synth id name ld ad =
    { Request.id = Some id; job = synth_job ~ld ~ad (Request.Named name) }
  in
  [
    synth "s1" "ewf" 14 9;
    synth "s2" "fig4" 6 4;
    synth "s3" "fig4" 1 1;
    (* infeasible *)
    {
      Request.id = Some "sw";
      job =
        Request.Sweep
          {
            Request.graph = Request.Named "fig4";
            library = Request.Lib_default;
            lds = [ 5; 6 ];
            ads = [ 3; 4 ];
            approach = Request.Ours;
            scheduler = Request.Density;
          };
    };
    {
      Request.id = Some "ck";
      job =
        Request.Check
          {
            Request.graph = Request.Named "fig4";
            library = Request.Lib_default;
            ld = 6;
            ad = 4;
            strategy = Request.Best;
            scheduler = Request.Density;
          };
    };
    { Request.id = Some "pg"; job = Request.Ping };
  ]

(* Pipelined exchange: send everything, then read one response per
   request; responses correlate by id.  Returns (id -> raw result
   JSON) sorted, plus the raw lines for cache-field inspection. *)
let exchange client reqs =
  List.iter (fun r -> check_ok "send" (Client.send client r)) reqs;
  let lines =
    List.map (fun _ -> check_ok "recv" (Client.recv_raw client)) reqs
  in
  let results =
    List.sort compare
      (List.map
         (fun line ->
           let j = check_ok "parse" (Json.of_string line) in
           let id =
             match Json.member "id" j with
             | Some (Json.Str s) -> s
             | _ -> Alcotest.failf "response without id: %s" line
           in
           match Json.member "result" j with
           | Some r -> (id, Json.to_string r)
           | None -> Alcotest.failf "response without result: %s" line)
         lines)
  in
  (results, lines)

let cache_tier line =
  Option.bind
    (Json.member "cache" (check_ok "parse" (Json.of_string line)))
    (fun c ->
      match Json.member "tier" c with Some (Json.Str t) -> Some t | _ -> None)

let test_serve_mixed_workload () =
  with_server (fun socket ->
      with_client socket (fun c ->
          let results, _ = exchange c workload in
          Alcotest.(check int) "one response per request" (List.length workload)
            (List.length results);
          Alcotest.(check bool) "infeasible is a payload, not an error" true
            (contains ~affix:"infeasible" (List.assoc "s3" results));
          Alcotest.(check bool) "check passed" true
            (contains ~affix:{|"passed":true|} (List.assoc "ck" results));
          Alcotest.(check string) "pong" {|{"kind":"pong"}|}
            (List.assoc "pg" results)))

let test_serve_deterministic_across_configs () =
  (* The same workload against a sequential singleton-batch daemon and
     a parallel batching one — and against the latter's warm cache —
     must produce byte-identical result payloads. *)
  let run ?cache_dir ~domains ~batch_max passes =
    with_server ?cache_dir ~domains ~batch_max (fun socket ->
        with_client socket (fun c ->
            List.init passes (fun _ -> fst (exchange c workload))))
  in
  let seq = run ~domains:1 ~batch_max:1 1 in
  let par = run ~domains:4 ~batch_max:8 2 in
  let baseline = List.hd seq in
  List.iter
    (fun results ->
      Alcotest.(check bool) "payloads independent of config and cache" true
        (results = baseline))
    par

let test_serve_concurrent_connections () =
  with_server (fun socket ->
      let out = Array.make 4 [] in
      let threads =
        Array.init 4 (fun i ->
            Thread.create
              (fun () ->
                with_client socket (fun c -> out.(i) <- fst (exchange c workload)))
              ())
      in
      Array.iter Thread.join threads;
      Array.iter
        (fun results ->
          Alcotest.(check bool) "all connections agree" true (results = out.(0)))
        out)

let test_serve_cache_tiers () =
  let cache_dir = Filename.concat (temp_dir "rchls-serve-cache") "cache" in
  let req = List.hd workload in
  let first, second =
    with_server ~cache_dir (fun socket ->
        with_client socket (fun c ->
            let _, l1 = exchange c [ req ] in
            let _, l2 = exchange c [ req ] in
            (List.hd l1, List.hd l2)))
  in
  Alcotest.(check (option string)) "first computes" None (cache_tier first);
  Alcotest.(check (option string)) "second hits memory" (Some "memory")
    (cache_tier second);
  (* a fresh daemon on the same directory answers from disk *)
  let third, fourth =
    with_server ~cache_dir (fun socket ->
        with_client socket (fun c ->
            let _, l3 = exchange c [ req ] in
            let _, l4 = exchange c [ req ] in
            (List.hd l3, List.hd l4)))
  in
  Alcotest.(check (option string)) "restart hits disk" (Some "disk")
    (cache_tier third);
  Alcotest.(check (option string)) "then memory again" (Some "memory")
    (cache_tier fourth);
  let strip line =
    Json.to_string
      (Option.get (Json.member "result" (check_ok "parse" (Json.of_string line))))
  in
  Alcotest.(check string) "disk payload byte-identical" (strip first) (strip third)

let test_serve_backpressure () =
  (* queue_max = 0: every miss is refused with the overloaded code. *)
  with_server ~queue_max:0 (fun socket ->
      with_client socket (fun c ->
          let resp = check_ok "call" (Client.call c (List.hd workload)) in
          (match resp.Response.result with
          | Error { code = Response.Overloaded; _ } -> ()
          | _ -> Alcotest.fail "expected the overloaded error");
          (* ping bypasses the queue entirely *)
          let pong =
            check_ok "ping"
              (Client.call c { Request.id = None; job = Request.Ping })
          in
          Alcotest.(check bool) "ping still answers" true
            (pong.Response.result = Ok Response.Pong)))

let test_serve_rejects_malformed () =
  with_server (fun socket ->
      with_client socket (fun c ->
          check_ok "send" (Client.send_raw c "not json");
          (match check_ok "recv" (Client.recv c) with
          | { Response.result = Error { code = Response.Bad_request; _ }; _ } -> ()
          | _ -> Alcotest.fail "expected bad_request");
          check_ok "send" (Client.send_raw c {|{"api":"rchls.api/9","job":"ping"}|});
          match check_ok "recv" (Client.recv c) with
          | { Response.result = Error { code = Response.Unsupported_version; _ }; _ }
            -> ()
          | _ -> Alcotest.fail "expected unsupported_version"))

(* --- observability ----------------------------------------------------- *)

let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      let s = Buffer.contents buf in
      let rec body_at i =
        if i + 4 > String.length s then Alcotest.failf "no header end in %S" s
        else if String.sub s i 4 = "\r\n\r\n" then i + 4
        else body_at (i + 1)
      in
      (String.sub s 0 (body_at 0), String.sub s (body_at 0) (String.length s - body_at 0)))

(* The value of one Prometheus sample line, e.g.
   [scrape_value body "rchls_serve_requests_total"] *)
let scrape_value body series =
  let lines = String.split_on_char '\n' body in
  match
    List.find_opt
      (fun l -> String.length l > String.length series
               && String.sub l 0 (String.length series + 1) = series ^ " ")
      lines
  with
  | None -> Alcotest.failf "series %s missing from scrape" series
  | Some l ->
    (match
       int_of_string_opt
         (String.trim
            (String.sub l (String.length series)
               (String.length l - String.length series)))
     with
    | Some v -> v
    | None -> Alcotest.failf "unparseable sample %S" l)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l -> go (l :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_serve_observability_consistency () =
  (* One daemon with every observability surface on; the counters in
     the [stats] answer, the Prometheus scrape and the access log must
     tell the same story. *)
  Telemetry.reset ();
  Metrics.reset ();
  let dir = temp_dir "rchls-obs" in
  let socket = Filename.concat dir "s.sock" in
  let log_path = Filename.concat dir "access.log" in
  let config =
    {
      (Server.default_config (Server.Unix_socket socket)) with
      Server.cache_dir = Some (Filename.concat dir "cache");
      domains = Some 2;
      batch_max = 4;
      metrics = Some (Server.Tcp ("127.0.0.1", 0));
      access_log = Some (log_path, 1 lsl 20);
    }
  in
  let server = check_ok "server start" (Server.start config) in
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let mport =
    match Server.metrics_port server with
    | Some p -> p
    | None -> Alcotest.fail "metrics endpoint did not bind"
  in
  with_client socket (fun c ->
      (* two passes: 5 non-admin requests each, second pass all memory
         hits; plus a ping and a malformed line, neither accounted *)
      ignore (exchange c workload);
      ignore (exchange c workload);
      check_ok "send" (Client.send_raw c "not json");
      (match check_ok "recv" (Client.recv c) with
      | { Response.result = Error { code = Response.Bad_request; _ }; _ } -> ()
      | _ -> Alcotest.fail "expected bad_request");
      let stats =
        match
          check_ok "stats"
            (Client.call c { Request.id = Some "st"; job = Request.Stats })
        with
        | { Response.result = Ok (Response.Stats_snapshot s); _ } -> s
        | _ -> Alcotest.fail "expected a stats snapshot"
      in
      let counter name =
        Option.value ~default:0 (List.assoc_opt name stats.Response.counters)
      in
      Alcotest.(check int) "accounted requests" 10 (counter "serve.requests");
      Alcotest.(check int) "memory hits" 5 (counter "serve.hits.memory");
      Alcotest.(check int) "misses" 5 (counter "serve.misses");
      Alcotest.(check int) "pings excluded" 2 (counter "serve.pings");
      Alcotest.(check int) "malformed tallied" 1 (counter "serve.malformed");
      Alcotest.(check int) "disk tier counters live" 5
        (counter "diskcache.misses");
      (* the access log was flushed before the stats answer *)
      let records = List.map (fun l -> check_ok "log json" (Json.of_string l))
          (read_lines log_path)
      in
      Alcotest.(check int) "one log record per accounted request"
        (counter "serve.requests") (List.length records);
      Alcotest.(check int) "log agrees on records written"
        (counter "serve.access_log.records") (List.length records);
      let tier_count want =
        List.length
          (List.filter
             (fun r ->
               match Json.member "tier" r with
               | Some (Json.Str t) -> Some t = want
               | Some Json.Null | None -> want = None
               | _ -> false)
             records)
      in
      Alcotest.(check int) "log memory tiers" 5 (tier_count (Some "memory"));
      Alcotest.(check int) "log computed tiers" 5 (tier_count None);
      List.iter
        (fun r ->
          let field name =
            match Option.bind (Json.member name r) Json.to_int_opt with
            | Some v -> v
            | None -> Alcotest.failf "log record lacks %s" name
          in
          Alcotest.(check bool) "timing sane" true
            (field "exec_ns" >= 0
            && field "queue_ns" >= 0
            && field "total_ns" >= field "exec_ns"
            && field "bytes" > 0);
          match Json.member "status" r with
          | Some (Json.Str "ok") -> ()
          | _ -> Alcotest.fail "log status not ok")
        records;
      (* the window saw exactly the accounted requests; the queue/exec
         windows only the computed jobs *)
      let window name =
        match List.assoc_opt name stats.Response.windows with
        | Some w -> w
        | None -> Alcotest.failf "window %s missing from stats" name
      in
      Alcotest.(check int) "request window count" 10
        (window "serve.request").Response.count;
      Alcotest.(check int) "exec window count" 5
        (window "serve.exec").Response.count;
      (* the Prometheus scrape tells the same story *)
      let head, body = http_get mport "/" in
      Alcotest.(check bool) "scrape is 200 text/plain" true
        (contains ~affix:"200" head && contains ~affix:"text/plain" head);
      Alcotest.(check int) "scrape requests = log records"
        (List.length records)
        (scrape_value body "rchls_serve_requests_total");
      Alcotest.(check int) "scrape memory hits" 5
        (scrape_value body "rchls_serve_hits_memory_total");
      Alcotest.(check int) "scrape misses" 5
        (scrape_value body "rchls_serve_misses_total");
      Alcotest.(check int) "scrape count matches window"
        (window "serve.request").Response.count
        (scrape_value body "rchls_serve_request_seconds_count");
      Alcotest.(check bool) "summary quantiles exposed" true
        (contains ~affix:{|rchls_serve_request_seconds{quantile="0.99"}|} body);
      (* the JSON endpoint parses and the health kind answers inline *)
      let _, jbody = http_get mport "/json" in
      (match Json.of_string jbody with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "/json unparseable: %s" e);
      match
        check_ok "health"
          (Client.call c { Request.id = Some "h"; job = Request.Health })
      with
      | { Response.result = Ok (Response.Health_report h); _ } ->
        Alcotest.(check bool) "healthy" true h.Response.healthy;
        Alcotest.(check int) "queue bound echoed" config.Server.queue_max
          h.Response.queue_max
      | _ -> Alcotest.fail "expected a health report")

let () =
  Alcotest.run "api"
    [
      ( "codec",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_request_roundtrip;
            prop_response_roundtrip;
            prop_assemble_raw_matches_encode;
          ] );
      ( "strictness",
        [
          Alcotest.test_case "unknown field rejected" `Quick
            test_unknown_field_rejected;
          Alcotest.test_case "duplicate key rejected" `Quick
            test_duplicate_key_rejected;
          Alcotest.test_case "version mismatch rejected" `Quick
            test_version_mismatch_rejected;
          Alcotest.test_case "missing fields rejected" `Quick
            test_missing_required_rejected;
          Alcotest.test_case "defaults applied" `Quick test_defaults_applied;
          Alcotest.test_case "anneal decode" `Quick test_anneal_decode;
          Alcotest.test_case "explore bounds optional" `Quick
            test_explore_bounds_optional;
          Alcotest.test_case "explore job executes" `Slow
            test_explore_job_executes;
          Alcotest.test_case "response strictness" `Quick
            test_response_unknown_field_rejected;
        ] );
      ( "cache-key",
        [
          Alcotest.test_case "form independent" `Quick
            test_cache_key_form_independent;
          Alcotest.test_case "parameter sensitive" `Quick
            test_cache_key_param_sensitive;
        ] );
      ( "diskcache",
        [
          Alcotest.test_case "round-trip" `Quick test_diskcache_roundtrip;
          Alcotest.test_case "evicts oldest" `Quick test_diskcache_evicts_oldest;
          Alcotest.test_case "survives reopen" `Quick
            test_diskcache_survives_reopen;
        ] );
      ( "serve",
        [
          Alcotest.test_case "mixed workload" `Quick test_serve_mixed_workload;
          Alcotest.test_case "deterministic across configs" `Quick
            test_serve_deterministic_across_configs;
          Alcotest.test_case "concurrent connections" `Quick
            test_serve_concurrent_connections;
          Alcotest.test_case "cache tiers" `Quick test_serve_cache_tiers;
          Alcotest.test_case "backpressure" `Quick test_serve_backpressure;
          Alcotest.test_case "malformed input" `Quick test_serve_rejects_malformed;
          Alcotest.test_case "observability consistency" `Quick
            test_serve_observability_consistency;
        ] );
    ]
