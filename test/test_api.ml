(* The Rchls_api surface and the serve daemon.

   - QCheck round-trips: [decode (encode r) = Ok r] for every request
     and response value the generators can build — the property the
     .mli files promise.
   - Strict decoding: unknown fields, duplicate keys and foreign
     ["api"] versions are rejected, never defaulted.
   - Response-cache keys: form-independence (a benchmark by name and
     the same graph inline share a key) and parameter sensitivity.
   - Diskcache: round-trip, overwrite, approximate-LRU eviction.
   - Socket tests: a live in-process daemon serving mixed concurrent
     jobs, with payloads asserted byte-identical across worker-domain
     counts, batch sizes and cache tiers, plus the backpressure and
     malformed-input answers. *)

module Request = Rchls_api.Request
module Response = Rchls_api.Response
module Service = Rchls_experiments.Service
module Server = Rchls_serve.Server
module Client = Rchls_serve.Client
module Diskcache = Rchls_util.Diskcache
module Json = Rchls_util.Json
module Benchmarks = Rchls_dfg.Benchmarks
module Parse = Rchls_dfg.Parse
module Gen = QCheck2.Gen

let check_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

(* --- generators ------------------------------------------------------ *)

let gen_name = Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 8))
let gen_text = Gen.(string_size ~gen:printable (int_range 0 20))
let gen_opt_id = Gen.(opt gen_name)

let gen_source =
  Gen.(
    oneof
      [
        map (fun s -> Request.Named s) gen_name;
        map (fun s -> Request.Inline s) gen_text;
      ])

let gen_library_source =
  Gen.(
    oneof
      [
        return Request.Lib_default;
        map (fun s -> Request.Lib_file s) gen_name;
        map (fun s -> Request.Lib_inline s) gen_text;
      ])

let gen_strategy =
  Gen.oneofl [ Request.Best; Request.Figure6; Request.Bottom_up ]

let gen_scheduler =
  Gen.oneofl
    [ Request.Density; Request.Density_reference; Request.Force_directed ]

let gen_approach = Gen.oneofl [ Request.Ours; Request.Baseline; Request.Combined ]
let gen_bound = Gen.int_range 0 1000

let gen_synth =
  Gen.(
    map
      (fun (graph, library, ld, ad, strategy, scheduler) ->
        { Request.graph; library; ld; ad; strategy; scheduler })
      (tup6 gen_source gen_library_source gen_bound gen_bound gen_strategy
         gen_scheduler))

let gen_sweep =
  Gen.(
    map
      (fun (graph, library, lds, ads, approach, scheduler) ->
        { Request.graph; library; lds; ads; approach; scheduler })
      (tup6 gen_source gen_library_source
         (list_size (int_range 0 5) gen_bound)
         (list_size (int_range 0 5) gen_bound)
         gen_approach gen_scheduler))

let gen_fuzz =
  Gen.(
    map
      (fun (seed, cases, max_nodes, properties) ->
        { Request.seed; cases; max_nodes; properties })
      (tup4 (int_range 0 10_000) (int_range 1 1000) (int_range 2 20)
         (opt (list_size (int_range 0 3) gen_name))))

let gen_job =
  Gen.(
    oneof
      [
        map (fun s -> Request.Synth s) gen_synth;
        map (fun s -> Request.Sweep s) gen_sweep;
        map (fun s -> Request.Check s) gen_synth;
        map (fun f -> Request.Fuzz f) gen_fuzz;
        return Request.Ping;
      ])

let gen_request =
  Gen.(map (fun (id, job) -> { Request.id; job }) (tup2 gen_opt_id gen_job))

let gen_summary =
  Gen.(
    map
      (fun (latency, area, reliability, instances) ->
        { Response.latency; area; reliability; instances })
      (tup4 gen_bound gen_bound (float_bound_inclusive 1.)
         (list_size (int_range 0 4) (tup2 gen_name (int_range 1 9)))))

let gen_failure =
  Gen.(
    oneof
      [
        map
          (fun n -> Response.Latency_infeasible { best_achievable = n })
          gen_bound;
        map (fun n -> Response.Area_infeasible { best_achieved = n }) gen_bound;
        map (fun m -> Response.Scheduling_error m) gen_text;
      ])

let gen_design_result =
  Gen.(
    oneof
      [ map Result.ok gen_summary; map Result.error gen_failure ])

let gen_cell =
  Gen.(
    map
      (fun (ld, ad, reliability, area) -> { Response.ld; ad; reliability; area })
      (tup4 gen_bound gen_bound
         (opt (float_bound_inclusive 1.))
         (opt gen_bound)))

let gen_fuzz_outcome =
  Gen.(
    map
      (fun (property, cases, failure) -> { Response.property; cases; failure })
      (tup3 gen_name (int_range 0 1000)
         (opt
            (map
               (fun (case, message, shrink_steps, counterexample) ->
                 { Response.case; message; shrink_steps; counterexample })
               (tup4 (int_range 0 100) gen_text (int_range 0 50) gen_text)))))

let gen_payload =
  Gen.(
    oneof
      [
        map (fun r -> Response.Design r) gen_design_result;
        map
          (fun cells -> Response.Sweep_cells cells)
          (list_size (int_range 0 6) gen_cell);
        map
          (fun (result, violations) -> Response.Check_report { result; violations })
          (tup2 gen_design_result (list_size (int_range 0 3) gen_text));
        map
          (fun os -> Response.Fuzz_report os)
          (list_size (int_range 0 3) gen_fuzz_outcome);
        return Response.Pong;
      ])

let gen_error =
  Gen.(
    map
      (fun (code, message) -> { Response.code; message })
      (tup2
         (oneofl
            [
              Response.Bad_request;
              Response.Unsupported_version;
              Response.Overloaded;
              Response.Internal;
            ])
         gen_text))

let gen_response =
  Gen.(
    map
      (fun (id, result, cache) -> { Response.id; result; cache })
      (tup3 gen_opt_id
         (oneof [ map Result.ok gen_payload; map Result.error gen_error ])
         (opt
            (map
               (fun (tier, key) -> { Response.tier; key })
               (tup2 (oneofl [ Response.Memory; Response.Disk ]) gen_name)))))

(* --- codec round-trips ----------------------------------------------- *)

let prop_request_roundtrip =
  QCheck2.Test.make ~name:"request decode (encode r) = r" ~count:500 gen_request
    (fun r -> Request.of_string (Request.to_string r) = Ok r)

let prop_response_roundtrip =
  QCheck2.Test.make ~name:"response decode (encode r) = r" ~count:500
    gen_response (fun r -> Response.of_string (Response.to_string r) = Ok r)

let prop_assemble_raw_matches_encode =
  (* A cache hit splices the stored payload into the envelope by hand;
     the bytes must equal the structured encoder's. *)
  QCheck2.Test.make ~name:"assemble_raw = to_string on ok responses" ~count:300
    Gen.(
      tup3 gen_opt_id gen_payload
        (opt
           (map
              (fun (tier, key) -> { Response.tier; key })
              (tup2 (oneofl [ Response.Memory; Response.Disk ]) gen_name))))
    (fun (id, payload, cache) ->
      let structured =
        Response.to_string { Response.id; result = Ok payload; cache }
      in
      let raw =
        Response.assemble_raw ~id ~cache
          (Json.to_string (Response.payload_to_json payload))
      in
      structured = raw)

(* --- strict decoding -------------------------------------------------- *)

let req_line fields = Printf.sprintf {|{"api":"rchls.api/1",%s}|} fields

let expect_error what line =
  match Request.of_string line with
  | Error e -> e
  | Ok _ -> Alcotest.failf "%s: accepted %s" what line

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let test_unknown_field_rejected () =
  let e =
    expect_error "typo'd param"
      (req_line
         {|"job":"synth","params":{"graph":{"name":"ewf"},"ld":1,"ad":1,"strateggy":"best"}|})
  in
  Alcotest.(check bool) "names the field" true (contains ~affix:"strateggy" e)

let test_duplicate_key_rejected () =
  let e =
    expect_error "duplicate key"
      {|{"api":"rchls.api/1","job":"ping","job":"ping"}|}
  in
  Alcotest.(check bool) "mentions duplicate" true (contains ~affix:"duplicate" e)

let test_version_mismatch_rejected () =
  let e = expect_error "foreign version" {|{"api":"rchls.api/2","job":"ping"}|} in
  Alcotest.(check bool) "canonical message" true
    (contains ~affix:"unsupported schema version" e)

let test_missing_required_rejected () =
  ignore
    (expect_error "missing ld"
       (req_line {|"job":"synth","params":{"graph":{"name":"ewf"},"ad":1}|}));
  ignore (expect_error "missing job" (req_line {|"id":"x"|}))

let test_defaults_applied () =
  let r =
    check_ok "minimal synth"
      (Request.of_string
         (req_line {|"job":"synth","params":{"graph":{"name":"ewf"},"ld":1,"ad":2}|}))
  in
  match r.Request.job with
  | Request.Synth s ->
    Alcotest.(check bool) "defaults" true
      (s.Request.strategy = Request.Best
      && s.Request.scheduler = Request.Density
      && s.Request.library = Request.Lib_default)
  | _ -> Alcotest.fail "decoded to the wrong job"

let test_response_unknown_field_rejected () =
  match
    Response.of_string
      {|{"api":"rchls.api/1","status":"ok","result":{"kind":"pong"},"extra":1}|}
  with
  | Error e -> Alcotest.(check bool) "names field" true (contains ~affix:"extra" e)
  | Ok _ -> Alcotest.fail "extra envelope field accepted"

(* --- cache keys ------------------------------------------------------- *)

let synth_job ?(ld = 14) ?(ad = 9) graph =
  Request.Synth
    {
      Request.graph;
      library = Request.Lib_default;
      ld;
      ad;
      strategy = Request.Best;
      scheduler = Request.Density;
    }

let test_cache_key_form_independent () =
  let named =
    check_ok "named" (Service.cache_key (synth_job (Request.Named "ewf")))
  in
  let inline =
    check_ok "inline"
      (Service.cache_key
         (synth_job (Request.Inline (Parse.to_text Benchmarks.ewf))))
  in
  Alcotest.(check bool) "key exists" true (named <> None);
  Alcotest.(check bool) "named = inline" true (named = inline)

let test_cache_key_param_sensitive () =
  let k ld = check_ok "key" (Service.cache_key (synth_job ~ld (Request.Named "ewf"))) in
  Alcotest.(check bool) "ld changes the key" true (k 14 <> k 15);
  let sweep =
    check_ok "sweep key"
      (Service.cache_key
         (Request.Sweep
            {
              Request.graph = Request.Named "ewf";
              library = Request.Lib_default;
              lds = [ 14 ];
              ads = [ 9 ];
              approach = Request.Ours;
              scheduler = Request.Density;
            }))
  in
  Alcotest.(check bool) "job kind changes the key" true
    (sweep <> k 14 && sweep <> None);
  Alcotest.(check (option int)) "ping is never cached" None
    (Option.map (fun _ -> 0) (check_ok "ping" (Service.cache_key Request.Ping)))

(* --- disk cache ------------------------------------------------------- *)

let temp_dir prefix =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir d 0o700;
  d

let test_diskcache_roundtrip () =
  let d = check_ok "open" (Diskcache.open_dir (temp_dir "rchls-dc")) in
  Alcotest.(check (option string)) "miss" None (Diskcache.find d 42L);
  Diskcache.add d 42L "payload-a";
  Alcotest.(check (option string)) "hit" (Some "payload-a") (Diskcache.find d 42L);
  Diskcache.add d 42L "payload-b";
  Alcotest.(check (option string)) "overwrite" (Some "payload-b")
    (Diskcache.find d 42L);
  Alcotest.(check int) "one file" 1 (Diskcache.entries d);
  Alcotest.(check string) "file name" "000000000000002a.json"
    (Diskcache.key_name 42L)

let test_diskcache_evicts_oldest () =
  let d =
    check_ok "open" (Diskcache.open_dir ~max_entries:2 (temp_dir "rchls-dc"))
  in
  Diskcache.add d 1L "one";
  Unix.sleepf 0.02;
  Diskcache.add d 2L "two";
  Unix.sleepf 0.02;
  Diskcache.add d 3L "three";
  Alcotest.(check bool) "bounded" true (Diskcache.entries d <= 2);
  Alcotest.(check (option string)) "newest survives" (Some "three")
    (Diskcache.find d 3L);
  Alcotest.(check (option string)) "oldest evicted" None (Diskcache.find d 1L)

let test_diskcache_survives_reopen () =
  let dir = temp_dir "rchls-dc" in
  let d = check_ok "open" (Diskcache.open_dir dir) in
  Diskcache.add d 7L "persisted";
  let d' = check_ok "reopen" (Diskcache.open_dir dir) in
  Alcotest.(check (option string)) "found after reopen" (Some "persisted")
    (Diskcache.find d' 7L)

(* --- the live daemon -------------------------------------------------- *)

let with_server ?cache_dir ?(domains = 2) ?(batch_max = 4) ?(queue_max = 256) f =
  let socket = Filename.concat (temp_dir "rchls-serve") "s.sock" in
  let config =
    {
      (Server.default_config (Server.Unix_socket socket)) with
      Server.cache_dir;
      domains = Some domains;
      batch_max;
      queue_max;
    }
  in
  let server = check_ok "server start" (Server.start config) in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f socket)

let with_client socket f =
  let c = check_ok "connect" (Client.connect_unix socket) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

(* A mixed workload: synthesis (feasible and infeasible), a sweep, a
   checked synthesis and a ping, all with distinct ids. *)
let workload =
  let synth id name ld ad =
    { Request.id = Some id; job = synth_job ~ld ~ad (Request.Named name) }
  in
  [
    synth "s1" "ewf" 14 9;
    synth "s2" "fig4" 6 4;
    synth "s3" "fig4" 1 1;
    (* infeasible *)
    {
      Request.id = Some "sw";
      job =
        Request.Sweep
          {
            Request.graph = Request.Named "fig4";
            library = Request.Lib_default;
            lds = [ 5; 6 ];
            ads = [ 3; 4 ];
            approach = Request.Ours;
            scheduler = Request.Density;
          };
    };
    {
      Request.id = Some "ck";
      job =
        Request.Check
          {
            Request.graph = Request.Named "fig4";
            library = Request.Lib_default;
            ld = 6;
            ad = 4;
            strategy = Request.Best;
            scheduler = Request.Density;
          };
    };
    { Request.id = Some "pg"; job = Request.Ping };
  ]

(* Pipelined exchange: send everything, then read one response per
   request; responses correlate by id.  Returns (id -> raw result
   JSON) sorted, plus the raw lines for cache-field inspection. *)
let exchange client reqs =
  List.iter (fun r -> check_ok "send" (Client.send client r)) reqs;
  let lines =
    List.map (fun _ -> check_ok "recv" (Client.recv_raw client)) reqs
  in
  let results =
    List.sort compare
      (List.map
         (fun line ->
           let j = check_ok "parse" (Json.of_string line) in
           let id =
             match Json.member "id" j with
             | Some (Json.Str s) -> s
             | _ -> Alcotest.failf "response without id: %s" line
           in
           match Json.member "result" j with
           | Some r -> (id, Json.to_string r)
           | None -> Alcotest.failf "response without result: %s" line)
         lines)
  in
  (results, lines)

let cache_tier line =
  Option.bind
    (Json.member "cache" (check_ok "parse" (Json.of_string line)))
    (fun c ->
      match Json.member "tier" c with Some (Json.Str t) -> Some t | _ -> None)

let test_serve_mixed_workload () =
  with_server (fun socket ->
      with_client socket (fun c ->
          let results, _ = exchange c workload in
          Alcotest.(check int) "one response per request" (List.length workload)
            (List.length results);
          Alcotest.(check bool) "infeasible is a payload, not an error" true
            (contains ~affix:"infeasible" (List.assoc "s3" results));
          Alcotest.(check bool) "check passed" true
            (contains ~affix:{|"passed":true|} (List.assoc "ck" results));
          Alcotest.(check string) "pong" {|{"kind":"pong"}|}
            (List.assoc "pg" results)))

let test_serve_deterministic_across_configs () =
  (* The same workload against a sequential singleton-batch daemon and
     a parallel batching one — and against the latter's warm cache —
     must produce byte-identical result payloads. *)
  let run ?cache_dir ~domains ~batch_max passes =
    with_server ?cache_dir ~domains ~batch_max (fun socket ->
        with_client socket (fun c ->
            List.init passes (fun _ -> fst (exchange c workload))))
  in
  let seq = run ~domains:1 ~batch_max:1 1 in
  let par = run ~domains:4 ~batch_max:8 2 in
  let baseline = List.hd seq in
  List.iter
    (fun results ->
      Alcotest.(check bool) "payloads independent of config and cache" true
        (results = baseline))
    par

let test_serve_concurrent_connections () =
  with_server (fun socket ->
      let out = Array.make 4 [] in
      let threads =
        Array.init 4 (fun i ->
            Thread.create
              (fun () ->
                with_client socket (fun c -> out.(i) <- fst (exchange c workload)))
              ())
      in
      Array.iter Thread.join threads;
      Array.iter
        (fun results ->
          Alcotest.(check bool) "all connections agree" true (results = out.(0)))
        out)

let test_serve_cache_tiers () =
  let cache_dir = Filename.concat (temp_dir "rchls-serve-cache") "cache" in
  let req = List.hd workload in
  let first, second =
    with_server ~cache_dir (fun socket ->
        with_client socket (fun c ->
            let _, l1 = exchange c [ req ] in
            let _, l2 = exchange c [ req ] in
            (List.hd l1, List.hd l2)))
  in
  Alcotest.(check (option string)) "first computes" None (cache_tier first);
  Alcotest.(check (option string)) "second hits memory" (Some "memory")
    (cache_tier second);
  (* a fresh daemon on the same directory answers from disk *)
  let third, fourth =
    with_server ~cache_dir (fun socket ->
        with_client socket (fun c ->
            let _, l3 = exchange c [ req ] in
            let _, l4 = exchange c [ req ] in
            (List.hd l3, List.hd l4)))
  in
  Alcotest.(check (option string)) "restart hits disk" (Some "disk")
    (cache_tier third);
  Alcotest.(check (option string)) "then memory again" (Some "memory")
    (cache_tier fourth);
  let strip line =
    Json.to_string
      (Option.get (Json.member "result" (check_ok "parse" (Json.of_string line))))
  in
  Alcotest.(check string) "disk payload byte-identical" (strip first) (strip third)

let test_serve_backpressure () =
  (* queue_max = 0: every miss is refused with the overloaded code. *)
  with_server ~queue_max:0 (fun socket ->
      with_client socket (fun c ->
          let resp = check_ok "call" (Client.call c (List.hd workload)) in
          (match resp.Response.result with
          | Error { code = Response.Overloaded; _ } -> ()
          | _ -> Alcotest.fail "expected the overloaded error");
          (* ping bypasses the queue entirely *)
          let pong =
            check_ok "ping"
              (Client.call c { Request.id = None; job = Request.Ping })
          in
          Alcotest.(check bool) "ping still answers" true
            (pong.Response.result = Ok Response.Pong)))

let test_serve_rejects_malformed () =
  with_server (fun socket ->
      with_client socket (fun c ->
          check_ok "send" (Client.send_raw c "not json");
          (match check_ok "recv" (Client.recv c) with
          | { Response.result = Error { code = Response.Bad_request; _ }; _ } -> ()
          | _ -> Alcotest.fail "expected bad_request");
          check_ok "send" (Client.send_raw c {|{"api":"rchls.api/9","job":"ping"}|});
          match check_ok "recv" (Client.recv c) with
          | { Response.result = Error { code = Response.Unsupported_version; _ }; _ }
            -> ()
          | _ -> Alcotest.fail "expected unsupported_version"))

let () =
  Alcotest.run "api"
    [
      ( "codec",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_request_roundtrip;
            prop_response_roundtrip;
            prop_assemble_raw_matches_encode;
          ] );
      ( "strictness",
        [
          Alcotest.test_case "unknown field rejected" `Quick
            test_unknown_field_rejected;
          Alcotest.test_case "duplicate key rejected" `Quick
            test_duplicate_key_rejected;
          Alcotest.test_case "version mismatch rejected" `Quick
            test_version_mismatch_rejected;
          Alcotest.test_case "missing fields rejected" `Quick
            test_missing_required_rejected;
          Alcotest.test_case "defaults applied" `Quick test_defaults_applied;
          Alcotest.test_case "response strictness" `Quick
            test_response_unknown_field_rejected;
        ] );
      ( "cache-key",
        [
          Alcotest.test_case "form independent" `Quick
            test_cache_key_form_independent;
          Alcotest.test_case "parameter sensitive" `Quick
            test_cache_key_param_sensitive;
        ] );
      ( "diskcache",
        [
          Alcotest.test_case "round-trip" `Quick test_diskcache_roundtrip;
          Alcotest.test_case "evicts oldest" `Quick test_diskcache_evicts_oldest;
          Alcotest.test_case "survives reopen" `Quick
            test_diskcache_survives_reopen;
        ] );
      ( "serve",
        [
          Alcotest.test_case "mixed workload" `Quick test_serve_mixed_workload;
          Alcotest.test_case "deterministic across configs" `Quick
            test_serve_deterministic_across_configs;
          Alcotest.test_case "concurrent connections" `Quick
            test_serve_concurrent_connections;
          Alcotest.test_case "cache tiers" `Quick test_serve_cache_tiers;
          Alcotest.test_case "backpressure" `Quick test_serve_backpressure;
          Alcotest.test_case "malformed input" `Quick test_serve_rejects_malformed;
        ] );
    ]
