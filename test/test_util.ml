(* Unit and property tests for Rchls_util: PRNG, statistics, tables. *)

open Rchls_util

let check_float = Alcotest.(check (float 1e-9))

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_rng_int_invalid () =
  let r = Rng.create 0 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_float_bounds () =
  let r = Rng.create 9 in
  for _ = 1 to 10_000 do
    let v = Rng.float r 3.5 in
    Alcotest.(check bool) "in range" true (v >= 0. && v < 3.5)
  done

let test_rng_uniformity () =
  (* Chi-square-ish sanity: 8 buckets over 80k draws should each hold
     close to 10k. *)
  let r = Rng.create 123 in
  let buckets = Array.make 8 0 in
  for _ = 1 to 80_000 do
    let v = Rng.int r 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "bucket near 10k" true (c > 9_000 && c < 11_000))
    buckets

let test_rng_bool_balance () =
  let r = Rng.create 5 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bool r then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 4_500 && !trues < 5_500)

let test_rng_split_independent () =
  let r = Rng.create 11 in
  let s = Rng.split r in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 r = Rng.int64 s then incr same
  done;
  Alcotest.(check bool) "split independent" true (!same < 4)

let test_rng_copy () =
  let r = Rng.create 3 in
  ignore (Rng.int64 r);
  let c = Rng.copy r in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 r) (Rng.int64 c)

(* --- Stats --- *)

let test_mean () = check_float "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ])

let test_mean_empty () =
  Alcotest.(check bool) "nan" true (Float.is_nan (Stats.mean []))

let test_variance () =
  check_float "variance" 2.5 (Stats.variance [ 1.; 2.; 3.; 4.; 5. ])

let test_variance_singleton () = check_float "variance" 0. (Stats.variance [ 42. ])

let test_stddev () = check_float "stddev" (sqrt 2.5) (Stats.stddev [ 1.; 2.; 3.; 4.; 5. ])

let test_geometric_mean () =
  check_float "geomean" 4. (Stats.geometric_mean [ 2.; 8. ])

let test_geometric_mean_rejects_nonpositive () =
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geometric_mean: non-positive sample") (fun () ->
      ignore (Stats.geometric_mean [ 1.; 0. ]))

let test_min_max () =
  let lo, hi = Stats.min_max [ 3.; -1.; 7.; 2. ] in
  check_float "min" (-1.) lo;
  check_float "max" 7. hi

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p50" 50. (Stats.percentile 50. xs);
  check_float "p100" 100. (Stats.percentile 100. xs);
  check_float "p1" 1. (Stats.percentile 1. xs)

let test_confidence_interval () =
  let xs = List.init 100 (fun _ -> 5.) in
  check_float "zero spread" 0. (Stats.confidence_95 xs)

let test_wilson_known_value () =
  (* 50/100 at z=1.96: the textbook Wilson interval is approximately
     [0.4038, 0.5962]. *)
  let lo, hi = Stats.wilson_interval ~successes:50 ~trials:100 () in
  Alcotest.(check (float 1e-3)) "low" 0.4038 lo;
  Alcotest.(check (float 1e-3)) "high" 0.5962 hi

let test_wilson_bounds_clamped () =
  (* Extreme proportions stay inside [0,1] and never collapse to a
     zero-width interval (unlike the Wald approximation). *)
  let lo0, hi0 = Stats.wilson_interval ~successes:0 ~trials:20 () in
  check_float "zero successes low" 0. lo0;
  Alcotest.(check bool) "zero successes high > 0" true (hi0 > 0. && hi0 < 1.);
  let lo1, hi1 = Stats.wilson_interval ~successes:20 ~trials:20 () in
  check_float "all successes high" 1. hi1;
  Alcotest.(check bool) "all successes low < 1" true (lo1 > 0. && lo1 < 1.)

let test_wilson_half_width_shrinks () =
  (* At a fixed proportion the interval tightens as trials grow. *)
  let w n = Stats.wilson_half_width ~successes:(n / 2) ~trials:n () in
  Alcotest.(check bool) "63 > 630" true (w 63 > w 630);
  Alcotest.(check bool) "630 > 6300" true (w 630 > w 6300)

let test_wilson_rejects () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero trials" true
    (bad (fun () -> Stats.wilson_interval ~successes:0 ~trials:0 ()));
  Alcotest.(check bool) "successes > trials" true
    (bad (fun () -> Stats.wilson_interval ~successes:5 ~trials:4 ()));
  Alcotest.(check bool) "negative successes" true
    (bad (fun () -> Stats.wilson_interval ~successes:(-1) ~trials:4 ()));
  Alcotest.(check bool) "non-positive z" true
    (bad (fun () -> Stats.wilson_interval ~z:0. ~successes:2 ~trials:4 ()))

(* --- Tablefmt --- *)

let contains_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_table_basic () =
  let t = Tablefmt.create [ "x"; "y" ] in
  Tablefmt.add_row t [ "1"; "22" ];
  Tablefmt.add_row t [ "333"; "4" ];
  let s = Tablefmt.render t in
  Alcotest.(check bool) "header present" true (contains_substring s "| x   | y  |");
  Alcotest.(check bool) "row present" true (contains_substring s "| 333 | 4  |")

let test_table_rows_align () =
  let t = Tablefmt.create [ "col" ] in
  Tablefmt.add_row t [ "wide-cell" ];
  Tablefmt.add_row t [ "x" ];
  let lines = String.split_on_char '\n' (Tablefmt.render t) in
  let widths = List.filter_map (fun l -> if l = "" then None else Some (String.length l)) lines in
  match widths with
  | [] -> Alcotest.fail "no lines"
  | w :: ws -> List.iter (fun w' -> Alcotest.(check int) "equal line widths" w w') ws

let test_table_width_mismatch () =
  let t = Tablefmt.create [ "a"; "b" ] in
  Alcotest.check_raises "row width" (Invalid_argument "Tablefmt.add_row: row width mismatch")
    (fun () -> Tablefmt.add_row t [ "only-one" ])

let test_table_aligns_mismatch () =
  Alcotest.check_raises "aligns width"
    (Invalid_argument "Tablefmt.create: aligns/header width mismatch") (fun () ->
      ignore (Tablefmt.create ~aligns:[ Tablefmt.Left ] [ "a"; "b" ]))

let test_float_cell () =
  Alcotest.(check string) "5 digits" "0.48467" (Tablefmt.float_cell 0.48467);
  Alcotest.(check string) "2 digits" "1.50" (Tablefmt.float_cell ~digits:2 1.5)

let test_pct_cell () =
  Alcotest.(check string) "positive" "+23.79%" (Tablefmt.pct_cell 23.79);
  Alcotest.(check string) "negative" "-9.22%" (Tablefmt.pct_cell (-9.22))

(* --- Telemetry --- *)

let test_telemetry_counter_basics () =
  Telemetry.reset ();
  Telemetry.incr "t.a";
  Telemetry.add "t.a" 4;
  Alcotest.(check int) "accumulated" 5 (Telemetry.counter "t.a");
  Alcotest.(check int) "unknown is 0" 0 (Telemetry.counter "t.never")

let test_telemetry_sharding_exact () =
  (* Four domains hammer one counter; the sharded cells must aggregate
     to the exact total on read. *)
  Telemetry.reset ();
  let per = 25_000 and workers = 4 in
  let ds =
    List.init workers (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              Telemetry.incr "t.shard"
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost updates" (per * workers) (Telemetry.counter "t.shard")

let test_format_ns () =
  Alcotest.(check string) "ns" "870 ns" (Telemetry.format_ns 870L);
  Alcotest.(check string) "us" "12.40 us" (Telemetry.format_ns 12_400L);
  Alcotest.(check string) "ms" "3.25 ms" (Telemetry.format_ns 3_250_000L);
  Alcotest.(check string) "s" "1.200 s" (Telemetry.format_ns 1_200_000_000L);
  (* edge cases: zero, the whole int64 range, unit boundaries *)
  Alcotest.(check string) "zero" "0 ns" (Telemetry.format_ns 0L);
  Alcotest.(check string) "boundary stays in ns" "999 ns"
    (Telemetry.format_ns 999L);
  Alcotest.(check string) "boundary promotes to us" "1.00 us"
    (Telemetry.format_ns 1_000L);
  Alcotest.(check string) "max_int64 renders in seconds"
    "9223372036.855 s"
    (Telemetry.format_ns Int64.max_int);
  Alcotest.(check string) "float variant, zero" "0 ns"
    (Telemetry.format_ns_f 0.);
  Alcotest.(check string) "float variant, fractional" "1.50 us"
    (Telemetry.format_ns_f 1_500.);
  Alcotest.(check string) "float variant agrees with int64"
    (Telemetry.format_ns 3_250_000L)
    (Telemetry.format_ns_f 3_250_000.)

let test_histogram_quantiles () =
  Telemetry.reset ();
  for i = 1 to 1000 do
    Telemetry.observe "t.h" (Int64.of_int i)
  done;
  match Telemetry.histogram "t.h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count" 1000 h.Telemetry.count;
    Alcotest.(check int64) "sum exact" 500_500L h.Telemetry.sum_ns;
    Alcotest.(check int64) "max exact" 1000L h.Telemetry.max_ns;
    (* Quantiles are log2-bucket estimates: within a bucket of truth. *)
    Alcotest.(check bool) "p50 near 500" true (h.p50_ns >= 250. && h.p50_ns <= 1000.);
    Alcotest.(check bool) "quantiles monotone" true
      (h.p50_ns <= h.p90_ns && h.p90_ns <= h.p99_ns
      && h.p99_ns <= Int64.to_float h.max_ns +. 1e-9)

let test_histogram_empty () =
  Telemetry.reset ();
  Alcotest.(check bool) "unknown histogram" true (Telemetry.histogram "t.none" = None)

let test_render_units_and_histograms () =
  Telemetry.reset ();
  Telemetry.incr "t.c";
  Telemetry.add_timer_ns "t.timer" 12_400L;
  Telemetry.observe "t.h" 100L;
  let s = Telemetry.render () in
  Alcotest.(check bool) "counter row" true (contains_substring s "t.c");
  Alcotest.(check bool) "timer in human units" true (contains_substring s "12.40 us");
  Alcotest.(check bool) "histogram row" true (contains_substring s "t.h [hist]");
  Alcotest.(check bool) "quantile fields" true
    (contains_substring s "p50=" && contains_substring s "p99=");
  Telemetry.reset ();
  Alcotest.(check string) "empty registry renders empty" "" (Telemetry.render ());
  (* The reset histogram's registry key survives with zero
     observations; it must not produce a row (checked above via the
     empty render).  Extreme observations must render without
     overflow artifacts. *)
  Telemetry.observe "t.extreme" 0L;
  Telemetry.observe "t.extreme" Int64.max_int;
  (* Int64.max_int clamps to the native-int ceiling instead of
     wrapping to a tiny value. *)
  let s = Telemetry.render () in
  Alcotest.(check bool) "extreme histogram renders" true
    (contains_substring s "t.extreme [hist]"
    && contains_substring s
         (Printf.sprintf "max=%s" (Telemetry.format_ns (Int64.of_int max_int))));
  Telemetry.reset ()

(* --- properties --- *)

let prop_percentile_member =
  QCheck2.Test.make ~name:"percentile returns a sample"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 100.))
    (fun xs -> List.mem (Rchls_util.Stats.percentile 50. xs) xs)

let prop_mean_between_min_max =
  QCheck2.Test.make ~name:"mean within [min,max]" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 100.))
    (fun xs ->
      let lo, hi = Stats.min_max xs in
      let m = Stats.mean xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let prop_rng_int_range =
  QCheck2.Test.make ~name:"Rng.int stays in range" ~count:500
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 1 1_000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_wilson_brackets_proportion =
  QCheck2.Test.make ~name:"wilson interval brackets the sample proportion"
    ~count:300
    QCheck2.Gen.(pair (int_range 1 10_000) (float_bound_inclusive 1.))
    (fun (trials, frac) ->
      let successes = int_of_float (frac *. float_of_int trials) in
      let successes = min trials (max 0 successes) in
      let lo, hi = Stats.wilson_interval ~successes ~trials () in
      let p = float_of_int successes /. float_of_int trials in
      0. <= lo && lo <= p +. 1e-12 && p <= hi +. 1e-12 && hi <= 1.)

(* --- Pool --- *)

let test_pool_map_order () =
  let xs = List.init 100 Fun.id in
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "map order (%d domains)" domains)
        (List.map (fun x -> x * x) xs)
        (Pool.map ~domains (fun x -> x * x) xs))
    [ 1; 2; 4 ]

let test_pool_map_array_order () =
  let xs = Array.init 100 Fun.id in
  List.iter
    (fun domains ->
      let got = Pool.map_array ~domains (fun x -> x * x) xs in
      Alcotest.(check (array int))
        (Printf.sprintf "map_array order (%d domains)" domains)
        (Array.map (fun x -> x * x) xs)
        got;
      Alcotest.(check (array int)) "input not mutated" (Array.init 100 Fun.id) xs)
    [ 1; 2; 4 ]

let test_pool_map_array_empty_and_singleton () =
  Alcotest.(check (array int)) "empty" [||] (Pool.map_array succ [||]);
  Alcotest.(check (array int)) "singleton" [| 2 |] (Pool.map_array succ [| 1 |])

let test_pool_map_array_first_exception () =
  (* The contract picks the first failing item in input order, however
     the domains interleave. *)
  List.iter
    (fun domains ->
      match
        Pool.map_array ~domains
          (fun x -> if x mod 10 = 3 then failwith (string_of_int x) else x)
          (Array.init 64 Fun.id)
      with
      | _ -> Alcotest.fail "exception swallowed"
      | exception Failure msg ->
        Alcotest.(check string)
          (Printf.sprintf "first failure (%d domains)" domains)
          "3" msg)
    [ 1; 4 ]

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "bool balance" `Quick test_rng_bool_balance;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "mean empty" `Quick test_mean_empty;
          Alcotest.test_case "variance" `Quick test_variance;
          Alcotest.test_case "variance singleton" `Quick test_variance_singleton;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "geometric mean rejects" `Quick
            test_geometric_mean_rejects_nonpositive;
          Alcotest.test_case "min max" `Quick test_min_max;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "confidence" `Quick test_confidence_interval;
          Alcotest.test_case "wilson known value" `Quick test_wilson_known_value;
          Alcotest.test_case "wilson clamped" `Quick test_wilson_bounds_clamped;
          Alcotest.test_case "wilson half-width shrinks" `Quick
            test_wilson_half_width_shrinks;
          Alcotest.test_case "wilson rejects" `Quick test_wilson_rejects;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "basic render" `Quick test_table_basic;
          Alcotest.test_case "line widths equal" `Quick test_table_rows_align;
          Alcotest.test_case "row width mismatch" `Quick test_table_width_mismatch;
          Alcotest.test_case "aligns mismatch" `Quick test_table_aligns_mismatch;
          Alcotest.test_case "float cell" `Quick test_float_cell;
          Alcotest.test_case "pct cell" `Quick test_pct_cell;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "counter basics" `Quick test_telemetry_counter_basics;
          Alcotest.test_case "sharded counters exact" `Quick
            test_telemetry_sharding_exact;
          Alcotest.test_case "format_ns units" `Quick test_format_ns;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
          Alcotest.test_case "render units + histograms" `Quick
            test_render_units_and_histograms;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map order" `Quick test_pool_map_order;
          Alcotest.test_case "map_array order" `Quick test_pool_map_array_order;
          Alcotest.test_case "map_array empty/singleton" `Quick
            test_pool_map_array_empty_and_singleton;
          Alcotest.test_case "map_array first exception" `Quick
            test_pool_map_array_first_exception;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_percentile_member;
            prop_mean_between_min_max;
            prop_rng_int_range;
            prop_wilson_brackets_proportion;
          ] );
    ]
