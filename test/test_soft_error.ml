(* Tests for the soft-error engine: reliability math, the Hazucha SER
   model, critical charge, fault injection and SER aggregation. *)

module Reliability = Rchls_soft_error.Reliability
module Hazucha = Rchls_soft_error.Hazucha
module Charge = Rchls_soft_error.Charge
module Fault_sim = Rchls_soft_error.Fault_sim
module Ser = Rchls_soft_error.Ser
open Rchls_netlist

let checkf = Alcotest.(check (float 1e-9))
let checkf4 = Alcotest.(check (float 1e-4))

(* --- Reliability --- *)

let test_exponential_law () =
  checkf "R(0.001)" (exp (-0.001)) (Reliability.of_failure_rate 0.001);
  checkf "R at t=2" (exp (-0.002)) (Reliability.of_failure_rate ~t:2. 0.001)

let test_failure_rate_inverse () =
  let lambda = 0.0123 in
  checkf "roundtrip" lambda (Reliability.failure_rate (Reliability.of_failure_rate lambda))

let test_failure_rate_domain () =
  Alcotest.(check bool) "rejects 0" true
    (try ignore (Reliability.failure_rate 0.); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "rejects >1" true
    (try ignore (Reliability.failure_rate 1.5); false with Invalid_argument _ -> true)

let test_mttf () = checkf "mttf" 1000. (Reliability.mttf 0.001)

let test_serial () =
  checkf "serial" (0.9 *. 0.8) (Reliability.serial [ 0.9; 0.8 ]);
  checkf "empty serial" 1. (Reliability.serial []);
  (* The paper's Figure 4(a) example: R = 0.969^6 = 0.82783. *)
  checkf4 "fig4 product" 0.82783 (Reliability.serial (List.init 6 (fun _ -> 0.969)))

let test_parallel_any () =
  checkf "parallel" (1. -. (0.1 *. 0.2)) (Reliability.parallel_any [ 0.9; 0.8 ])

let test_binomial () =
  checkf "C(5,2)" 10. (Reliability.binomial 5 2);
  checkf "C(3,0)" 1. (Reliability.binomial 3 0);
  checkf "C(3,5)" 0. (Reliability.binomial 3 5)

let test_tmr_formula () =
  (* TMR = 3r^2 - 2r^3. *)
  let r = 0.969 in
  checkf "tmr" ((3. *. r *. r) -. (2. *. r *. r *. r)) (Reliability.nmr ~n:3 r)

let test_nmr_5 () =
  (* 3-of-5 majority. *)
  let r = 0.9 in
  let expect =
    Reliability.binomial 5 3 *. (r ** 3.) *. ((1. -. r) ** 2.)
    +. (Reliability.binomial 5 4 *. (r ** 4.) *. (1. -. r))
    +. (r ** 5.)
  in
  checkf "nmr5" expect (Reliability.nmr ~n:5 r)

let test_nmr_rejects_even () =
  Alcotest.(check bool) "rejects n=2" true
    (try ignore (Reliability.nmr ~n:2 0.9); false with Invalid_argument _ -> true)

let test_nmr_improves_above_half () =
  (* Majority voting only helps when r > 0.5. *)
  Alcotest.(check bool) "improves at 0.9" true (Reliability.nmr ~n:3 0.9 > 0.9);
  Alcotest.(check bool) "hurts at 0.4" true (Reliability.nmr ~n:3 0.4 < 0.4)

let test_duplex () =
  checkf "duplex" (1. -. (0.031 *. 0.031)) (Reliability.duplex_rollback 0.969);
  checkf "duplex perfect" 1. (Reliability.duplex_rollback 1.)

(* --- Hazucha --- *)

let test_qs_solved_from_anchors () =
  (* The calibration derived in DESIGN.md: Qs ~ 8.627e-21 C. *)
  let qs =
    Hazucha.solve_qs ~qc_ref:Charge.paper_qcritical_rca ~r_ref:0.999
      ~qc_other:Charge.paper_qcritical_bk ~r_other:0.969
  in
  Alcotest.(check (float 1e-23)) "qs" 8.627e-21 qs

let test_kogge_stone_prediction () =
  (* With Qs from the RCA/BK anchors, the Kogge-Stone published
     Qcritical must predict its published reliability 0.987 — the
     internal-consistency check of the paper's Table 1. *)
  let env = Hazucha.default in
  let lambda_rca = -.log 0.999 in
  let lambda_ks =
    lambda_rca
    *. Hazucha.ser_ratio env ~qc_from:Charge.paper_qcritical_rca
         ~qc_to:Charge.paper_qcritical_ks
  in
  Alcotest.(check (float 5e-4)) "R(KS)" 0.987 (exp (-.lambda_ks))

let test_ser_monotone_in_qcritical () =
  let env = Hazucha.default in
  let s1 = Hazucha.ser env ~qcritical:10e-21 in
  let s2 = Hazucha.ser env ~qcritical:50e-21 in
  Alcotest.(check bool) "more charge, fewer upsets" true (s2 < s1)

let test_ser_ratio_identity () =
  let env = Hazucha.default in
  checkf "same charge" 1. (Hazucha.ser_ratio env ~qc_from:3e-21 ~qc_to:3e-21)

let test_calibrate_k () =
  let env = Hazucha.calibrate_k Hazucha.default ~qc_ref:42e-21 ~lambda_ref:0.5 in
  checkf "anchored" 0.5 (Hazucha.ser env ~qcritical:42e-21)

let test_solve_qs_rejects () =
  Alcotest.(check bool) "same charge" true
    (try
       ignore (Hazucha.solve_qs ~qc_ref:1e-21 ~r_ref:0.9 ~qc_other:1e-21 ~r_other:0.8);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "r out of range" true
    (try
       ignore (Hazucha.solve_qs ~qc_ref:1e-21 ~r_ref:1.0 ~qc_other:2e-21 ~r_other:0.8);
       false
     with Invalid_argument _ -> true)

(* --- Charge --- *)

let inverter_chain n =
  let b = Netlist.builder "chain" in
  let x = Netlist.input b "x" in
  let rec go net i = if i = 0 then net else go (Netlist.add_gate b Gate.Inv [ net ]) (i - 1) in
  Netlist.output b "o" (go x n);
  Netlist.finalize b

let test_qcritical_positive () =
  let nl = inverter_chain 3 in
  for net = 0 to Netlist.net_count nl - 1 do
    Alcotest.(check bool) "positive" true (Charge.node_qcritical Charge.default nl net > 0.)
  done

let test_qcritical_scales_with_fanout () =
  (* A net driving 4 gates collects more charge than one driving 1. *)
  let fan n =
    let b = Netlist.builder "fan" in
    let x = Netlist.input b "x" in
    let inv = Netlist.add_gate b Gate.Inv [ x ] in
    for i = 0 to n - 1 do
      Netlist.output b (Printf.sprintf "o%d" i) (Netlist.add_gate b Gate.Buf [ inv ])
    done;
    Netlist.finalize b
  in
  let inv_out nl = (Array.get (Netlist.gates nl) 0).Netlist.out in
  let q1 = Charge.node_qcritical Charge.default (fan 1) (inv_out (fan 1)) in
  let q4 = Charge.node_qcritical Charge.default (fan 4) (inv_out (fan 4)) in
  Alcotest.(check bool) "fanout raises Qcritical" true (q4 > q1)

(* --- Fault_sim --- *)

let and_or_netlist () =
  (* o = (x AND y) OR z: the AND output is logically masked when z=1. *)
  let b = Netlist.builder "ao" in
  let x = Netlist.input b "x" in
  let y = Netlist.input b "y" in
  let z = Netlist.input b "z" in
  let a = Netlist.add_gate b Gate.And2 [ x; y ] in
  let o = Netlist.add_gate b Gate.Or2 [ a; z ] in
  Netlist.output b "o" o;
  (Netlist.finalize b, a, o)

let test_candidates () =
  let nl, a, o = and_or_netlist () in
  Alcotest.(check (list int)) "gate outputs" [ a; o ] (Fault_sim.candidate_nets nl)

let test_output_node_always_propagates () =
  let nl, _, o = and_or_netlist () in
  checkf "output derating 1" 1.
    (Fault_sim.node_logical_derating
       ~config:{ Fault_sim.Campaign.default with vectors = 64 }
       nl o)

let test_masked_node_derating () =
  (* The AND output propagates only when z=0: expected derating 0.5,
     Monte-Carlo within a loose tolerance. *)
  let nl, a, _ = and_or_netlist () in
  let d =
    Fault_sim.node_logical_derating
      ~config:{ Fault_sim.Campaign.default with vectors = 2000 }
      nl a
  in
  Alcotest.(check bool) "derating near 0.5" true (d > 0.4 && d < 0.6)

let test_run_deterministic () =
  let nl, _, _ = and_or_netlist () in
  let r1 = Fault_sim.run nl and r2 = Fault_sim.run nl in
  List.iter2
    (fun (a : Fault_sim.node_result) (b : Fault_sim.node_result) ->
      Alcotest.(check int) "same observations" a.observed b.observed)
    r1.Fault_sim.nodes r2.Fault_sim.nodes

let test_run_seed_changes_results () =
  let nl = inverter_chain 8 in
  let r1 = Fault_sim.run ~config:{ Fault_sim.Campaign.default with seed = 1 } nl in
  let r2 = Fault_sim.run ~config:{ Fault_sim.Campaign.default with seed = 2 } nl in
  (* An inverter chain propagates every flip, so even different seeds
     agree here; check instead that both report full derating. *)
  List.iter
    (fun (n : Fault_sim.node_result) -> checkf "chain derating" 1. n.logical_derating)
    (r1.Fault_sim.nodes @ r2.Fault_sim.nodes)

let test_node_sampling () =
  let nl = inverter_chain 16 in
  let r =
    Fault_sim.run
      ~config:{ Fault_sim.Campaign.default with sampling = Fault_sim.Sampling.Strided 4 }
      nl
  in
  Alcotest.(check int) "4 nodes" 4 (List.length r.Fault_sim.nodes);
  Alcotest.(check (float 1e-9)) "fraction" 0.25 r.Fault_sim.sampled_fraction

let test_fraction_sampling () =
  let nl = inverter_chain 16 in
  let r =
    Fault_sim.run
      ~config:
        { Fault_sim.Campaign.default with sampling = Fault_sim.Sampling.Fraction 0.5 }
      nl
  in
  Alcotest.(check int) "8 nodes" 8 (List.length r.Fault_sim.nodes);
  Alcotest.(check (float 1e-9)) "fraction" 0.5 r.Fault_sim.sampled_fraction

let test_invalid_config () =
  let nl = inverter_chain 2 in
  let rejects label config =
    Alcotest.(check bool) label true
      (try
         ignore (Fault_sim.run ~config nl);
         false
       with Invalid_argument _ -> true)
  in
  rejects "rejects 0 vectors" { Fault_sim.Campaign.default with vectors = 0 };
  rejects "rejects 0-node sample"
    { Fault_sim.Campaign.default with sampling = Fault_sim.Sampling.Strided 0 };
  rejects "rejects fraction > 1"
    { Fault_sim.Campaign.default with sampling = Fault_sim.Sampling.Fraction 1.5 };
  rejects "rejects 0 ci target" { Fault_sim.Campaign.default with ci_target = Some 0. };
  rejects "rejects 0 domains" { Fault_sim.Campaign.default with domains = Some 0 }

(* --- Campaign: packed engine, determinism, early stop, cache --- *)

let node_results_equal (a : Fault_sim.node_result) (b : Fault_sim.node_result) =
  a.net = b.net && a.kind = b.kind && a.observed = b.observed && a.injected = b.injected
  && a.logical_derating = b.logical_derating
  && a.ci_low = b.ci_low && a.ci_high = b.ci_high

let reports_equal (a : Fault_sim.report) (b : Fault_sim.report) =
  a.Fault_sim.netlist_name = b.Fault_sim.netlist_name
  && a.Fault_sim.sampled_fraction = b.Fault_sim.sampled_fraction
  && List.length a.Fault_sim.nodes = List.length b.Fault_sim.nodes
  && List.for_all2 node_results_equal a.Fault_sim.nodes b.Fault_sim.nodes

let test_packed_equals_scalar () =
  (* The bit-parallel engine must be a pure speedup: bit-identical
     reports on both a masked netlist and a real adder, at vector
     counts spanning several 63-lane batches. *)
  let nl_ao, _, _ = and_or_netlist () in
  let nl_add = Rchls_circuits.Adder_ripple.netlist ~width:4 () in
  List.iter
    (fun vectors ->
      let config = { Fault_sim.Campaign.default with vectors; domains = Some 1 } in
      List.iter
        (fun nl ->
          Fault_sim.Campaign.cache_clear ();
          let packed = Fault_sim.Campaign.run ~config nl in
          let scalar = Fault_sim.Campaign.run_scalar ~config nl in
          Alcotest.(check bool)
            (Printf.sprintf "packed = scalar (%d vectors)" vectors)
            true (reports_equal packed scalar))
        [ nl_ao; nl_add ])
    [ 1; 63; 64; 130 ]

let test_campaign_domain_determinism () =
  (* Per-node RNG streams are split before the fan-out, so the report
     is identical however many domains process the nodes. *)
  let nl = Rchls_circuits.Adder_ripple.netlist ~width:6 () in
  let run domains =
    Fault_sim.Campaign.cache_clear ();
    Fault_sim.Campaign.run
      ~config:{ Fault_sim.Campaign.default with vectors = 70; domains = Some domains }
      nl
  in
  let r1 = run 1 in
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "%d domains = sequential" domains)
        true
        (reports_equal r1 (run domains)))
    [ 2; 4 ]

let test_early_termination_stops () =
  (* An inverter chain has derating exactly 1 at every node: the Wilson
     half-width at p=1 shrinks fast, so a loose target must stop nodes
     after few batches while a None target runs all vectors. *)
  let nl = inverter_chain 6 in
  Fault_sim.Campaign.cache_clear ();
  let full =
    Fault_sim.Campaign.run ~config:{ Fault_sim.Campaign.default with vectors = 630 } nl
  in
  let early =
    Fault_sim.Campaign.run
      ~config:{ Fault_sim.Campaign.default with vectors = 630; ci_target = Some 0.05 }
      nl
  in
  List.iter
    (fun (n : Fault_sim.node_result) ->
      Alcotest.(check int) "full runs all vectors" 630 n.injected)
    full.Fault_sim.nodes;
  List.iter
    (fun (n : Fault_sim.node_result) ->
      Alcotest.(check bool) "early stop strictly before the cap" true (n.injected < 630);
      Alcotest.(check bool) "stop only once the target is met" true
        ((n.ci_high -. n.ci_low) /. 2. <= 0.05);
      checkf "derating unaffected" 1. n.logical_derating)
    early.Fault_sim.nodes

let test_ci_bounds_bracket_derating () =
  let nl = Rchls_circuits.Adder_ripple.netlist ~width:4 () in
  Fault_sim.Campaign.cache_clear ();
  let r = Fault_sim.Campaign.run ~config:{ Fault_sim.Campaign.default with vectors = 64 } nl in
  List.iter
    (fun (n : Fault_sim.node_result) ->
      Alcotest.(check bool) "ci_low <= derating <= ci_high" true
        (n.ci_low <= n.logical_derating && n.logical_derating <= n.ci_high);
      Alcotest.(check bool) "ci in [0,1]" true (n.ci_low >= 0. && n.ci_high <= 1.))
    r.Fault_sim.nodes

let test_campaign_cache_hit () =
  let nl = Rchls_circuits.Adder_brent_kung.netlist ~width:4 () in
  let config = { Fault_sim.Campaign.default with vectors = 32 } in
  Fault_sim.Campaign.cache_clear ();
  Rchls_util.Telemetry.reset ();
  let r1 = Fault_sim.Campaign.run ~config nl in
  let misses = Rchls_util.Telemetry.counter "fault.cache.misses" in
  let r2 = Fault_sim.Campaign.run ~config nl in
  Alcotest.(check int) "one miss" 1 misses;
  Alcotest.(check int) "one hit" 1 (Rchls_util.Telemetry.counter "fault.cache.hits");
  Alcotest.(check bool) "cached report is the same report" true (r1 == r2);
  (* A structurally identical netlist built separately also hits. *)
  let nl' = Rchls_circuits.Adder_brent_kung.netlist ~width:4 () in
  let r3 = Fault_sim.Campaign.run ~config nl' in
  Alcotest.(check bool) "fingerprint-equal netlist hits" true (reports_equal r1 r3);
  (* A different config misses. *)
  ignore (Fault_sim.Campaign.run ~config:{ config with seed = 2 } nl);
  Alcotest.(check int) "different seed misses" 2
    (Rchls_util.Telemetry.counter "fault.cache.misses")

(* --- Ser --- *)

let test_analyze_chain () =
  let nl = inverter_chain 6 in
  let t = Ser.analyze ~fault_config:{ Fault_sim.Campaign.default with vectors = 32 } nl in
  Alcotest.(check int) "6 nodes" 6 (List.length t.Ser.nodes);
  Alcotest.(check bool) "positive total SER" true (t.Ser.total_ser > 0.);
  Alcotest.(check bool) "effective Qc positive" true (t.Ser.effective_qcritical > 0.)

let test_derated_below_raw () =
  let nl, _, _ = and_or_netlist () in
  let t = Ser.analyze nl in
  List.iter
    (fun (n : Ser.node_ser) ->
      Alcotest.(check bool) "derated <= raw" true (n.derated_ser <= n.raw_ser))
    t.Ser.nodes

let test_sampling_extrapolates_total () =
  let nl = inverter_chain 16 in
  let full =
    Ser.analyze ~fault_config:{ Fault_sim.Campaign.default with vectors = 16 } nl
  in
  let sampled =
    Ser.analyze
      ~fault_config:
        {
          Fault_sim.Campaign.default with
          vectors = 16;
          sampling = Fault_sim.Sampling.Strided 4;
        }
      nl
  in
  (* A uniform chain: the extrapolated total should be close to the
     full total (every node is statistically identical). *)
  Alcotest.(check bool) "extrapolation sane" true
    (sampled.Ser.total_ser > 0.5 *. full.Ser.total_ser
    && sampled.Ser.total_ser < 2. *. full.Ser.total_ser)

(* --- properties --- *)

let prop_serial_le_min =
  QCheck2.Test.make ~name:"serial product <= min component" ~count:200
    QCheck2.Gen.(list_size (int_range 1 10) (float_range 0.01 1.))
    (fun rs ->
      let lo, _ = Rchls_util.Stats.min_max rs in
      Reliability.serial rs <= lo +. 1e-9)

let prop_parallel_ge_max =
  QCheck2.Test.make ~name:"parallel >= max component" ~count:200
    QCheck2.Gen.(list_size (int_range 1 10) (float_range 0.01 0.999))
    (fun rs ->
      let _, hi = Rchls_util.Stats.min_max rs in
      Reliability.parallel_any rs >= hi -. 1e-9)

let prop_tmr_bounds =
  QCheck2.Test.make ~name:"nmr result stays in [0,1]" ~count:200
    QCheck2.Gen.(pair (oneofl [ 1; 3; 5; 7 ]) (float_bound_inclusive 1.))
    (fun (n, r) ->
      let v = Reliability.nmr ~n r in
      v >= -1e-9 && v <= 1. +. 1e-9)

let prop_duplex_dominates =
  QCheck2.Test.make ~name:"duplex >= simplex" ~count:200
    QCheck2.Gen.(float_bound_inclusive 1.)
    (fun r -> Reliability.duplex_rollback r >= r -. 1e-12)

let () =
  Alcotest.run "soft_error"
    [
      ( "reliability",
        [
          Alcotest.test_case "exponential law" `Quick test_exponential_law;
          Alcotest.test_case "failure rate inverse" `Quick test_failure_rate_inverse;
          Alcotest.test_case "failure rate domain" `Quick test_failure_rate_domain;
          Alcotest.test_case "mttf" `Quick test_mttf;
          Alcotest.test_case "serial" `Quick test_serial;
          Alcotest.test_case "parallel any" `Quick test_parallel_any;
          Alcotest.test_case "binomial" `Quick test_binomial;
          Alcotest.test_case "tmr formula" `Quick test_tmr_formula;
          Alcotest.test_case "nmr 5" `Quick test_nmr_5;
          Alcotest.test_case "nmr rejects even" `Quick test_nmr_rejects_even;
          Alcotest.test_case "nmr above half" `Quick test_nmr_improves_above_half;
          Alcotest.test_case "duplex" `Quick test_duplex;
        ] );
      ( "hazucha",
        [
          Alcotest.test_case "Qs from anchors" `Quick test_qs_solved_from_anchors;
          Alcotest.test_case "Kogge-Stone prediction" `Quick test_kogge_stone_prediction;
          Alcotest.test_case "monotone in Qcritical" `Quick test_ser_monotone_in_qcritical;
          Alcotest.test_case "ratio identity" `Quick test_ser_ratio_identity;
          Alcotest.test_case "calibrate k" `Quick test_calibrate_k;
          Alcotest.test_case "solve_qs rejects" `Quick test_solve_qs_rejects;
        ] );
      ( "charge",
        [
          Alcotest.test_case "positive" `Quick test_qcritical_positive;
          Alcotest.test_case "scales with fanout" `Quick test_qcritical_scales_with_fanout;
        ] );
      ( "fault_sim",
        [
          Alcotest.test_case "candidates" `Quick test_candidates;
          Alcotest.test_case "output node" `Quick test_output_node_always_propagates;
          Alcotest.test_case "masked node" `Quick test_masked_node_derating;
          Alcotest.test_case "deterministic" `Quick test_run_deterministic;
          Alcotest.test_case "chain full derating" `Quick test_run_seed_changes_results;
          Alcotest.test_case "node sampling" `Quick test_node_sampling;
          Alcotest.test_case "fraction sampling" `Quick test_fraction_sampling;
          Alcotest.test_case "invalid config" `Quick test_invalid_config;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "packed = scalar" `Quick test_packed_equals_scalar;
          Alcotest.test_case "domain determinism" `Quick test_campaign_domain_determinism;
          Alcotest.test_case "early termination" `Quick test_early_termination_stops;
          Alcotest.test_case "ci brackets derating" `Quick test_ci_bounds_bracket_derating;
          Alcotest.test_case "cache hit" `Quick test_campaign_cache_hit;
        ] );
      ( "ser",
        [
          Alcotest.test_case "analyze chain" `Quick test_analyze_chain;
          Alcotest.test_case "derated below raw" `Quick test_derated_below_raw;
          Alcotest.test_case "sampling extrapolates" `Quick test_sampling_extrapolates_total;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_serial_le_min; prop_parallel_ge_max; prop_tmr_bounds; prop_duplex_dominates ]
      );
    ]
