(* Tests for the characterized resource library: resource records,
   library queries, the text format and the Table-1 characterization
   chain. *)

module Resource = Rchls_charlib.Resource
module Library = Rchls_charlib.Library
module Characterize = Rchls_charlib.Characterize

let checkf = Alcotest.(check (float 1e-9))

(* --- Resource --- *)

let sample =
  {
    Resource.id = "x1";
    display = "X 1";
    op_class = Resource.Add;
    architecture = "rca";
    area = 2;
    delay = 1;
    reliability = 0.98;
  }

let test_validate_ok () =
  Alcotest.(check bool) "valid" true (Resource.validate sample = Ok ())

let test_validate_rejects () =
  let bad r msg =
    match Resource.validate r with
    | Ok () -> Alcotest.fail ("should reject: " ^ msg)
    | Error _ -> ()
  in
  bad { sample with Resource.id = "" } "empty id";
  bad { sample with Resource.area = 0 } "zero area";
  bad { sample with Resource.delay = -1 } "negative delay";
  bad { sample with Resource.reliability = 0. } "zero reliability";
  bad { sample with Resource.reliability = 1.1 } "reliability > 1"

let test_class_names () =
  Alcotest.(check bool) "add" true (Resource.class_of_name "add" = Some Resource.Add);
  Alcotest.(check bool) "adder" true (Resource.class_of_name "Adder" = Some Resource.Add);
  Alcotest.(check bool) "mul" true (Resource.class_of_name "mul" = Some Resource.Mul);
  Alcotest.(check bool) "unknown" true (Resource.class_of_name "div" = None)

let test_reliability_ordering () =
  let a = { sample with Resource.id = "a"; reliability = 0.99 } in
  let b = { sample with Resource.id = "b"; reliability = 0.95 } in
  Alcotest.(check bool) "a first" true (Resource.compare_by_reliability a b < 0);
  (* Ties break by smaller area. *)
  let c = { a with Resource.id = "c"; area = 1 } in
  Alcotest.(check bool) "smaller area first" true (Resource.compare_by_reliability c a < 0)

(* --- Library: table 1 --- *)

let lib = Library.table1

let test_table1_contents () =
  Alcotest.(check int) "5 versions" 5 (List.length (Library.resources lib));
  let check id area delay rel =
    let r = Library.find_exn lib id in
    Alcotest.(check int) (id ^ " area") area r.Resource.area;
    Alcotest.(check int) (id ^ " delay") delay r.Resource.delay;
    checkf (id ^ " reliability") rel r.Resource.reliability
  in
  check "add1" 1 2 0.999;
  check "add2" 2 1 0.969;
  check "add3" 4 1 0.987;
  check "mul1" 2 2 0.999;
  check "mul2" 4 1 0.969

let test_versions_sorted () =
  let adds = Library.versions lib Resource.Add in
  Alcotest.(check (list string)) "by reliability" [ "add1"; "add3"; "add2" ]
    (List.map (fun (r : Resource.t) -> r.id) adds)

let test_selectors () =
  Alcotest.(check string) "most reliable add" "add1"
    (Library.most_reliable lib Resource.Add).Resource.id;
  Alcotest.(check string) "fastest add (ties by reliability)" "add3"
    (Library.fastest lib Resource.Add).Resource.id;
  Alcotest.(check string) "smallest add" "add1"
    (Library.smallest lib Resource.Add).Resource.id;
  Alcotest.(check int) "min delay" 1 (Library.min_delay lib Resource.Add)

let test_faster_versions () =
  let add1 = Library.find_exn lib "add1" in
  Alcotest.(check (list string)) "faster than add1" [ "add3"; "add2" ]
    (List.map (fun (r : Resource.t) -> r.id) (Library.faster_versions lib ~than:add1));
  let add2 = Library.find_exn lib "add2" in
  Alcotest.(check (list string)) "nothing faster than add2" []
    (List.map (fun (r : Resource.t) -> r.id) (Library.faster_versions lib ~than:add2))

let test_smaller_versions () =
  (* Smaller and not slower (paper line 26): for add3 only add2
     qualifies (add1 is smaller but slower). *)
  let add3 = Library.find_exn lib "add3" in
  Alcotest.(check (list string)) "smaller than add3" [ "add2" ]
    (List.map (fun (r : Resource.t) -> r.id) (Library.smaller_versions lib ~than:add3))

let test_of_resources_rejects () =
  Alcotest.(check bool) "empty" true (Result.is_error (Library.of_resources []));
  Alcotest.(check bool) "duplicate ids" true
    (Result.is_error (Library.of_resources [ sample; sample ]))

(* --- text format --- *)

let test_text_roundtrip () =
  match Library.of_text (Library.to_text lib) with
  | Error e -> Alcotest.fail e
  | Ok lib' ->
    List.iter2
      (fun (a : Resource.t) (b : Resource.t) ->
        Alcotest.(check string) "id" a.id b.id;
        Alcotest.(check int) "area" a.area b.area;
        Alcotest.(check int) "delay" a.delay b.delay;
        checkf "reliability" a.reliability b.reliability;
        Alcotest.(check string) "display" a.display b.display)
      (Library.resources lib) (Library.resources lib')

let test_text_errors () =
  let expect_err text =
    Alcotest.(check bool) text true (Result.is_error (Library.of_text text))
  in
  expect_err "a1 \"A\" add rca one 2 0.9";
  expect_err "a1 \"A\" frobnicator rca 1 2 0.9";
  expect_err "a1 \"A\" add rca 1 2";
  expect_err "a1 \"unterminated add rca 1 2 0.9"

let test_text_comments () =
  let text = "# comment line\n\nadd1 \"Adder 1\" add rca 1 2 0.999\n" in
  match Library.of_text text with
  | Ok l -> Alcotest.(check int) "one" 1 (List.length (Library.resources l))
  | Error e -> Alcotest.fail e

(* --- characterization --- *)

let test_paper_chain_regenerates_table1 () =
  let chains, lib' = Characterize.from_paper_inputs () in
  Alcotest.(check int) "5 chains" 5 (List.length chains);
  List.iter
    (fun (c : Characterize.chain) ->
      let published = Library.find_exn lib c.resource_id in
      Alcotest.(check (float 5e-4))
        (c.resource_id ^ " reliability")
        published.Resource.reliability c.reliability)
    chains;
  (* And the generated library is usable by the synthesizer. *)
  Alcotest.(check int) "library size" 5 (List.length (Library.resources lib'))

let test_chain_monotone_in_qcritical () =
  let chains, _ = Characterize.from_paper_inputs () in
  let get id = List.find (fun (c : Characterize.chain) -> c.resource_id = id) chains in
  let rca = get "add1" and bk = get "add2" and ks = get "add3" in
  Alcotest.(check bool) "rca most reliable" true (rca.reliability > ks.reliability);
  Alcotest.(check bool) "ks above bk" true (ks.reliability > bk.reliability);
  Alcotest.(check bool) "qc ordering matches" true
    (rca.qcritical > ks.qcritical && ks.qcritical > bk.qcritical)

let test_measured_pipeline_runs () =
  (* Tiny configuration so the full netlist + fault-injection pipeline
     stays fast; we check structure, anchoring and value sanity, not
     the published numbers (see EXPERIMENTS.md). *)
  let config = { Rchls_soft_error.Fault_sim.Campaign.default with vectors = 8 } in
  let ms, lib' = Characterize.from_measurement ~width:4 ~fault_config:config () in
  Alcotest.(check int) "5 measurements" 5 (List.length ms);
  List.iter
    (fun (m : Characterize.measurement) ->
      Alcotest.(check bool)
        (m.chain.resource_id ^ " reliability in (0,1]")
        true
        (m.chain.reliability > 0. && m.chain.reliability <= 1.);
      Alcotest.(check bool) "area positive" true (m.chain.area >= 1);
      Alcotest.(check bool) "delay positive" true (m.chain.delay >= 1))
    ms;
  (* The ripple-carry anchor must land exactly on 0.999. *)
  let rca =
    List.find (fun (m : Characterize.measurement) -> m.chain.resource_id = "add1") ms
  in
  Alcotest.(check (float 1e-9)) "anchor" Characterize.anchor_reliability
    rca.chain.reliability;
  Alcotest.(check bool) "library valid" true (List.length (Library.resources lib') = 5)

(* --- properties --- *)

let prop_reliability_of_qcritical_monotone =
  QCheck2.Test.make ~name:"reliability monotone in Qcritical" ~count:200
    QCheck2.Gen.(pair (float_range 1e-21 100e-21) (float_range 1e-21 100e-21))
    (fun (q1, q2) ->
      let env = Rchls_soft_error.Hazucha.default in
      let anchor_qc = Rchls_soft_error.Charge.paper_qcritical_rca in
      let r1 = Characterize.reliability_of_qcritical ~env ~anchor_qc q1 in
      let r2 = Characterize.reliability_of_qcritical ~env ~anchor_qc q2 in
      if q1 <= q2 then r1 <= r2 +. 1e-12 else r2 <= r1 +. 1e-12)

let prop_text_roundtrip_random =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 8)
        (bind (pair (int_range 1 9) (pair (int_range 1 4) (float_range 0.5 1.)))
           (fun (area, (delay, rel)) -> return (area, delay, rel))))
  in
  QCheck2.Test.make ~name:"library text roundtrip" ~count:100 gen (fun specs ->
      let resources =
        List.mapi
          (fun i (area, delay, rel) ->
            {
              Resource.id = Printf.sprintf "r%d" i;
              display = Printf.sprintf "R %d" i;
              op_class = (if i mod 2 = 0 then Resource.Add else Resource.Mul);
              architecture = "rca";
              area;
              delay;
              reliability = rel;
            })
          specs
      in
      match Library.of_resources resources with
      | Error _ -> true (* duplicate-free by construction; unreachable *)
      | Ok l -> (
        match Library.of_text (Library.to_text l) with
        | Ok l' ->
          List.length (Library.resources l) = List.length (Library.resources l')
        | Error _ -> false))

let () =
  Alcotest.run "charlib"
    [
      ( "resource",
        [
          Alcotest.test_case "validate ok" `Quick test_validate_ok;
          Alcotest.test_case "validate rejects" `Quick test_validate_rejects;
          Alcotest.test_case "class names" `Quick test_class_names;
          Alcotest.test_case "reliability ordering" `Quick test_reliability_ordering;
        ] );
      ( "library",
        [
          Alcotest.test_case "table 1 contents" `Quick test_table1_contents;
          Alcotest.test_case "versions sorted" `Quick test_versions_sorted;
          Alcotest.test_case "selectors" `Quick test_selectors;
          Alcotest.test_case "faster versions" `Quick test_faster_versions;
          Alcotest.test_case "smaller versions" `Quick test_smaller_versions;
          Alcotest.test_case "of_resources rejects" `Quick test_of_resources_rejects;
        ] );
      ( "text format",
        [
          Alcotest.test_case "roundtrip" `Quick test_text_roundtrip;
          Alcotest.test_case "errors" `Quick test_text_errors;
          Alcotest.test_case "comments" `Quick test_text_comments;
        ] );
      ( "characterization",
        [
          Alcotest.test_case "paper chain = table 1" `Quick
            test_paper_chain_regenerates_table1;
          Alcotest.test_case "monotone in Qcritical" `Quick test_chain_monotone_in_qcritical;
          Alcotest.test_case "measured pipeline" `Quick test_measured_pipeline_runs;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_reliability_of_qcritical_monotone; prop_text_roundtrip_random ] );
    ]
