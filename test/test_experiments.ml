(* Integration tests: the sweep driver and the experiment generators.
   These exercise the whole stack (library -> DFG -> scheduling ->
   binding -> synthesis -> redundancy -> reporting) and pin down the
   qualitative claims the reproduction must preserve. *)

module Sweep = Rchls_experiments.Sweep
module Experiments = Rchls_experiments.Experiments
module Paper_data = Rchls_experiments.Paper_data
module Benchmarks = Rchls_dfg.Benchmarks
module Library = Rchls_charlib.Library

let lib = Library.table1

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- Sweep --- *)

let test_sweep_grid_shape () =
  let cells = Sweep.run Sweep.Ours Benchmarks.diffeq lib ~lds:[ 5; 6 ] ~ads:[ 11; 13 ] in
  Alcotest.(check int) "4 cells" 4 (List.length cells);
  ignore (Sweep.cell_at_exn cells ~ld:5 ~ad:11);
  Alcotest.(check bool) "missing cell is None" true
    (Sweep.cell_at cells ~ld:9 ~ad:9 = None);
  Alcotest.(check bool) "missing cell raises with coordinates" true
    (try
       ignore (Sweep.cell_at_exn cells ~ld:9 ~ad:9);
       false
     with Invalid_argument msg -> contains msg "ld=9" && contains msg "ad=9")

let monotone cells lds ads =
  List.for_all
    (fun ld ->
      List.for_all
        (fun ad ->
          List.for_all
            (fun ld' ->
              List.for_all
                (fun ad' ->
                  if ld' <= ld && ad' <= ad then
                    match
                      ( (Sweep.cell_at_exn cells ~ld ~ad).Sweep.reliability,
                        (Sweep.cell_at_exn cells ~ld:ld' ~ad:ad').Sweep.reliability )
                    with
                    | Some r, Some r' -> r >= r' -. 1e-12
                    | Some _, None -> true
                    | None, None -> true
                    | None, Some _ -> false
                  else true)
                ads)
            lds)
        ads)
    lds

let test_sweep_envelope_monotone () =
  List.iter
    (fun (g, lds, ads) ->
      List.iter
        (fun approach ->
          let cells = Sweep.run approach g lib ~lds ~ads in
          Alcotest.(check bool) "monotone" true (monotone cells lds ads))
        [ Sweep.Baseline; Sweep.Ours; Sweep.Combined ])
    [
      (Benchmarks.fir16, [ 10; 11; 12 ], [ 9; 11; 13 ]);
      (Benchmarks.diffeq, [ 5; 6; 7 ], [ 7; 11; 15 ]);
    ]

let test_improvement_pct () =
  Alcotest.(check (float 1e-9)) "+50%" 50. (Sweep.improvement_pct 0.5 0.75);
  Alcotest.(check (float 1e-9)) "-20%" (-20.) (Sweep.improvement_pct 0.5 0.4)

(* --- the paper's qualitative claims --- *)

let test_ours_beats_baseline_at_tight_bounds () =
  (* Table 2's headline: at the tightest (Ld, Ad) corner of each grid
     our approach beats the redundancy baseline. *)
  List.iter
    (fun (g, ld, ad) ->
      let ours = Sweep.run Sweep.Ours g lib ~lds:[ ld ] ~ads:[ ad ] in
      let base = Sweep.run Sweep.Baseline g lib ~lds:[ ld ] ~ads:[ ad ] in
      match
        ( (Sweep.cell_at_exn ours ~ld ~ad).Sweep.reliability,
          (Sweep.cell_at_exn base ~ld ~ad).Sweep.reliability )
      with
      | Some o, Some b ->
        Alcotest.(check bool)
          (Printf.sprintf "%s (%d,%d): %.5f > %.5f" (Rchls_dfg.Dfg.name g) ld ad o b)
          true (o > b)
      | Some _, None -> () (* baseline infeasible: ours wins by default *)
      | None, _ -> Alcotest.fail "ours infeasible at a published tight cell")
    [ (Benchmarks.fir16, 10, 9); (Benchmarks.ewf, 13, 9); (Benchmarks.diffeq, 5, 11) ]

let test_baseline_catches_up_at_loose_area () =
  (* The crossover: with a loose enough area bound the duplication
     baseline closes the gap (negative cells appear in the paper too).
     Check the gap shrinks between the tightest and loosest area. *)
  let gap ad =
    let ours = Sweep.run Sweep.Ours Benchmarks.fir16 lib ~lds:[ 10 ] ~ads:[ ad ] in
    let base = Sweep.run Sweep.Baseline Benchmarks.fir16 lib ~lds:[ 10 ] ~ads:[ ad ] in
    match
      ( (Sweep.cell_at_exn ours ~ld:10 ~ad).Sweep.reliability,
        (Sweep.cell_at_exn base ~ld:10 ~ad).Sweep.reliability )
    with
    | Some o, Some b -> o -. b
    | Some o, None -> o
    | _ -> Alcotest.fail "ours infeasible"
  in
  Alcotest.(check bool) "gap shrinks with looser area" true (gap 13 < gap 9)

let test_combined_dominates_ours_on_average () =
  let avg approach g rows =
    let lds = List.sort_uniq compare (List.map (fun r -> r.Paper_data.ld) rows) in
    let ads = List.sort_uniq compare (List.map (fun r -> r.Paper_data.ad) rows) in
    let cells = Sweep.run approach g lib ~lds ~ads in
    let vals =
      List.filter_map
        (fun (r : Paper_data.table2_row) ->
          (Sweep.cell_at_exn cells ~ld:r.ld ~ad:r.ad).Sweep.reliability)
        rows
    in
    Rchls_util.Stats.mean vals
  in
  List.iter
    (fun (g, rows) ->
      Alcotest.(check bool) "combined >= ours" true
        (avg Sweep.Combined g rows >= avg Sweep.Ours g rows -. 1e-12))
    [ (Benchmarks.fir16, Paper_data.table2a_fir); (Benchmarks.diffeq, Paper_data.table2c_diffeq) ]

let test_fig8_series_monotone () =
  (* Figure 8: reliability rises with either bound. *)
  let lds = List.map fst Paper_data.fig8a_latency in
  let cells = Sweep.run Sweep.Ours Benchmarks.fir16 lib ~lds ~ads:[ 8 ] in
  let series =
    List.filter_map (fun ld -> (Sweep.cell_at_exn cells ~ld ~ad:8).Sweep.reliability) lds
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-12 && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone in latency" true (increasing series)

(* --- paper data self-checks --- *)

let test_paper_data_shape () =
  Alcotest.(check int) "9 FIR rows" 9 (List.length Paper_data.table2a_fir);
  Alcotest.(check int) "9 EWF rows" 9 (List.length Paper_data.table2b_ewf);
  Alcotest.(check int) "9 DiffEq rows" 9 (List.length Paper_data.table2c_diffeq);
  List.iter
    (fun (r : Paper_data.table2_row) ->
      Alcotest.(check bool) "values in (0,1)" true
        (r.ref3 > 0. && r.ref3 < 1. && r.ours > 0. && r.ours < 1. && r.combined > 0.
        && r.combined < 1.))
    (Paper_data.table2a_fir @ Paper_data.table2b_ewf @ Paper_data.table2c_diffeq)

let test_paper_internal_consistency () =
  (* The published FIR anchors decompose exactly over the Table-1
     reliabilities — the checks that validated our model reverse-
     engineering. *)
  Alcotest.(check (float 5e-6)) "0.48467 = 0.969^23" 0.48467 (0.969 ** 23.);
  Alcotest.(check (float 5e-6)) "0.82783 = 0.969^6" 0.82783 (0.969 ** 6.);
  Alcotest.(check (float 5e-6)) "0.90713 = 0.999^3*0.969^3" 0.90713
    ((0.999 ** 3.) *. (0.969 ** 3.));
  Alcotest.(check (float 5e-6)) "0.78943 = 0.999^16*0.969^7" 0.78943
    ((0.999 ** 16.) *. (0.969 ** 7.));
  Alcotest.(check (float 5e-6)) "0.45509 = 0.969^25" 0.45509 (0.969 ** 25.)

(* --- indexed grid --- *)

let test_grid_matches_cell_at () =
  let lds = [ 5; 6; 7 ] and ads = [ 7; 11; 15 ] in
  let cells = Sweep.run Sweep.Ours Benchmarks.diffeq lib ~lds ~ads in
  let grid = Sweep.Grid.of_cells cells in
  Alcotest.(check int) "size" (List.length cells) (Sweep.Grid.size grid);
  Alcotest.(check bool) "cells round-trip" true (Sweep.Grid.cells grid = cells);
  List.iter
    (fun ld ->
      List.iter
        (fun ad ->
          Alcotest.(check bool) "find = cell_at" true
            (Sweep.Grid.find grid ~ld ~ad = Sweep.cell_at cells ~ld ~ad);
          Alcotest.(check bool) "find_exn = cell_at_exn" true
            (Sweep.Grid.find_exn grid ~ld ~ad = Sweep.cell_at_exn cells ~ld ~ad))
        ads)
    lds;
  Alcotest.(check bool) "missing is None" true
    (Sweep.Grid.find grid ~ld:99 ~ad:99 = None);
  Alcotest.(check bool) "missing raises with coordinates" true
    (try
       ignore (Sweep.Grid.find_exn grid ~ld:99 ~ad:98);
       false
     with Invalid_argument msg -> contains msg "ld=99" && contains msg "ad=98")

(* --- frontier-guided exploration --- *)

module Explore = Rchls_experiments.Explore

let test_pruned_equals_reference () =
  (* The tentpole invariant on real benchmarks: the pruned sweep is
     cell-for-cell identical to the exhaustive one, for every
     approach, and actually derives cells. *)
  let derived = ref 0 in
  List.iter
    (fun (g, lds, ads) ->
      List.iter
        (fun approach ->
          let reference = Sweep.run_reference approach g lib ~lds ~ads in
          let pruned, stats = Sweep.run_with_stats approach g lib ~lds ~ads in
          Alcotest.(check bool) "cell-for-cell identical" true
            (pruned = reference);
          Alcotest.(check int) "stats add up" stats.Explore.cells
            (stats.Explore.evaluated + stats.Explore.derived);
          derived := !derived + stats.Explore.derived)
        [ Sweep.Baseline; Sweep.Ours; Sweep.Combined ])
    [
      (Benchmarks.diffeq, [ 5; 6; 7 ], [ 5; 7; 9; 11; 13; 15 ]);
      (Benchmarks.fir16, [ 10; 12 ], [ 9; 10; 11; 12; 13 ]);
    ];
  (* A dense-enough plane must actually save work somewhere (a single
     combination may legitimately evaluate every cell). *)
  Alcotest.(check bool) "cells derived overall" true (!derived > 0)

let test_certificate_replays_identically () =
  (* A certified interval's promise, checked directly: re-synthesizing
     at any ad' inside the reported interval returns the identical raw
     cell. *)
  let g = Benchmarks.diffeq in
  List.iter
    (fun ad ->
      let raw, (lo, hi) =
        Explore.raw_cell_certified Explore.Ours g lib ~ld:6 ~ad
      in
      Alcotest.(check bool) "interval contains ad" true (lo <= ad && ad <= hi);
      List.iter
        (fun ad' ->
          if ad' >= lo && ad' <= hi then
            Alcotest.(check bool)
              (Printf.sprintf "ad'=%d replays ad=%d" ad' ad)
              true
              (Explore.raw_cell Explore.Ours g lib ~ld:6 ~ad:ad' = raw))
        (List.init 20 succ))
    [ 3; 8; 12; 16 ]

let test_frontier_dominance () =
  let cell ld ad r a =
    { Sweep.ld; ad; reliability = Some r; area = Some a }
  in
  let infeasible ld ad = { Sweep.ld; ad; reliability = None; area = None } in
  (* (6,10) dominates (7,12) (faster, smaller, more reliable); (5,8)
     and (6,10) are incomparable; infeasible cells never appear. *)
  let pts =
    Explore.frontier
      [ cell 5 8 0.90 8; cell 6 10 0.95 9; cell 7 12 0.94 11; infeasible 4 6 ]
  in
  Alcotest.(check (list (pair int int)))
    "frontier coordinates" [ (5, 8); (6, 10) ]
    (List.map (fun (p : Explore.point) -> (p.Explore.p_ld, p.Explore.p_ad)) pts);
  Alcotest.(check (list int)) "empty grid" []
    (List.map (fun (p : Explore.point) -> p.Explore.p_ld) (Explore.frontier []))

(* --- generated corpus --- *)

module Corpus = Rchls_experiments.Corpus

let temp_dir prefix =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.bits ()))

let test_corpus_roundtrip_and_determinism () =
  let d1 = temp_dir "rchls-corpus" and d2 = temp_dir "rchls-corpus" in
  let c1 = Corpus.generate ~dir:d1 ~seed:7 ~count:8 in
  let c2 = Corpus.generate ~dir:d2 ~seed:7 ~count:8 in
  Alcotest.(check int) "count" 8 (List.length c1.Corpus.entries);
  Alcotest.(check bool) "same seed, same manifest entries" true
    (c1.Corpus.entries = c2.Corpus.entries);
  let loaded =
    match Corpus.load ~dir:d1 with
    | Ok c -> c
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "load round-trips the manifest" true
    (loaded.Corpus.entries = c1.Corpus.entries
    && loaded.Corpus.seed = c1.Corpus.seed);
  List.iter2
    (fun e1 e2 ->
      let g1 =
        match Corpus.load_graph c1 e1 with Ok g -> g | Error m -> Alcotest.fail m
      in
      let g2 =
        match Corpus.load_graph c2 e2 with Ok g -> g | Error m -> Alcotest.fail m
      in
      Alcotest.(check string) "graph text identical across runs"
        (Rchls_dfg.Parse.to_text g1) (Rchls_dfg.Parse.to_text g2))
    c1.Corpus.entries c2.Corpus.entries;
  let c3 = Corpus.generate ~dir:(temp_dir "rchls-corpus") ~seed:8 ~count:8 in
  Alcotest.(check bool) "seed changes the corpus" true
    (c3.Corpus.entries <> c1.Corpus.entries)

let test_corpus_load_rejects_corruption () =
  let dir = temp_dir "rchls-corpus" in
  let c = Corpus.generate ~dir ~seed:1 ~count:2 in
  (match Corpus.load ~dir:(temp_dir "rchls-missing") with
  | Ok _ -> Alcotest.fail "missing manifest accepted"
  | Error _ -> ());
  let manifest = Filename.concat dir Corpus.manifest_file in
  let oc = open_out manifest in
  output_string oc {|{"version":"rchls.corpus/9","seed":1,"entries":[]}|};
  close_out oc;
  (match Corpus.load ~dir with
  | Ok _ -> Alcotest.fail "foreign version accepted"
  | Error m ->
    Alcotest.(check bool) "names the version" true (contains m "rchls.corpus"));
  Sys.remove (Filename.concat dir (List.hd c.Corpus.entries).Corpus.file);
  match Corpus.load_graph c (List.hd c.Corpus.entries) with
  | Ok _ -> Alcotest.fail "missing member accepted"
  | Error _ -> ()

(* --- experiment generators --- *)

let test_generators_produce_tables () =
  (* The quick generators must run and mention their own captions; the
     heavyweight sweeps are covered by the bench run. *)
  let quick = [ "table1"; "fig2"; "fig5"; "fig7" ] in
  List.iter
    (fun id ->
      let f = List.assoc id Experiments.all in
      let out = f () in
      Alcotest.(check bool) (id ^ " non-empty") true (String.length out > 100))
    quick

let test_table1_generator_exact () =
  let out = Experiments.table1 () in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains out needle))
    [ "0.99900"; "0.96900"; "0.98702"; "Adder 3"; "Multiplier 2"; "59.460e-21" ]

let test_fig5_reports_paper_value () =
  let out = Experiments.fig5 () in
  Alcotest.(check bool) "0.82783 present" true (contains out "0.82783")

let () =
  Alcotest.run "experiments"
    [
      ( "sweep",
        [
          Alcotest.test_case "grid shape" `Quick test_sweep_grid_shape;
          Alcotest.test_case "envelope monotone" `Slow test_sweep_envelope_monotone;
          Alcotest.test_case "improvement pct" `Quick test_improvement_pct;
        ] );
      ( "grid",
        [ Alcotest.test_case "matches cell_at" `Quick test_grid_matches_cell_at ] );
      ( "explore",
        [
          Alcotest.test_case "pruned = reference" `Slow
            test_pruned_equals_reference;
          Alcotest.test_case "certificate replays" `Slow
            test_certificate_replays_identically;
          Alcotest.test_case "frontier dominance" `Quick test_frontier_dominance;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "round-trip + determinism" `Quick
            test_corpus_roundtrip_and_determinism;
          Alcotest.test_case "rejects corruption" `Quick
            test_corpus_load_rejects_corruption;
        ] );
      ( "paper claims",
        [
          Alcotest.test_case "ours wins at tight bounds" `Slow
            test_ours_beats_baseline_at_tight_bounds;
          Alcotest.test_case "baseline catches up" `Slow
            test_baseline_catches_up_at_loose_area;
          Alcotest.test_case "combined dominates" `Slow
            test_combined_dominates_ours_on_average;
          Alcotest.test_case "fig8 monotone" `Slow test_fig8_series_monotone;
        ] );
      ( "paper data",
        [
          Alcotest.test_case "shape" `Quick test_paper_data_shape;
          Alcotest.test_case "internal consistency" `Quick test_paper_internal_consistency;
        ] );
      ( "generators",
        [
          Alcotest.test_case "produce tables" `Slow test_generators_produce_tables;
          Alcotest.test_case "table1 exact" `Quick test_table1_generator_exact;
          Alcotest.test_case "fig5 paper value" `Slow test_fig5_reports_paper_value;
        ] );
    ]
