(* Integration tests: the sweep driver and the experiment generators.
   These exercise the whole stack (library -> DFG -> scheduling ->
   binding -> synthesis -> redundancy -> reporting) and pin down the
   qualitative claims the reproduction must preserve. *)

module Sweep = Rchls_experiments.Sweep
module Experiments = Rchls_experiments.Experiments
module Paper_data = Rchls_experiments.Paper_data
module Benchmarks = Rchls_dfg.Benchmarks
module Library = Rchls_charlib.Library

let lib = Library.table1

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- Sweep --- *)

let test_sweep_grid_shape () =
  let cells = Sweep.run Sweep.Ours Benchmarks.diffeq lib ~lds:[ 5; 6 ] ~ads:[ 11; 13 ] in
  Alcotest.(check int) "4 cells" 4 (List.length cells);
  ignore (Sweep.cell_at_exn cells ~ld:5 ~ad:11);
  Alcotest.(check bool) "missing cell is None" true
    (Sweep.cell_at cells ~ld:9 ~ad:9 = None);
  Alcotest.(check bool) "missing cell raises with coordinates" true
    (try
       ignore (Sweep.cell_at_exn cells ~ld:9 ~ad:9);
       false
     with Invalid_argument msg -> contains msg "ld=9" && contains msg "ad=9")

let monotone cells lds ads =
  List.for_all
    (fun ld ->
      List.for_all
        (fun ad ->
          List.for_all
            (fun ld' ->
              List.for_all
                (fun ad' ->
                  if ld' <= ld && ad' <= ad then
                    match
                      ( (Sweep.cell_at_exn cells ~ld ~ad).Sweep.reliability,
                        (Sweep.cell_at_exn cells ~ld:ld' ~ad:ad').Sweep.reliability )
                    with
                    | Some r, Some r' -> r >= r' -. 1e-12
                    | Some _, None -> true
                    | None, None -> true
                    | None, Some _ -> false
                  else true)
                ads)
            lds)
        ads)
    lds

let test_sweep_envelope_monotone () =
  List.iter
    (fun (g, lds, ads) ->
      List.iter
        (fun approach ->
          let cells = Sweep.run approach g lib ~lds ~ads in
          Alcotest.(check bool) "monotone" true (monotone cells lds ads))
        [ Sweep.Baseline; Sweep.Ours; Sweep.Combined ])
    [
      (Benchmarks.fir16, [ 10; 11; 12 ], [ 9; 11; 13 ]);
      (Benchmarks.diffeq, [ 5; 6; 7 ], [ 7; 11; 15 ]);
    ]

let test_improvement_pct () =
  Alcotest.(check (float 1e-9)) "+50%" 50. (Sweep.improvement_pct 0.5 0.75);
  Alcotest.(check (float 1e-9)) "-20%" (-20.) (Sweep.improvement_pct 0.5 0.4)

(* --- the paper's qualitative claims --- *)

let test_ours_beats_baseline_at_tight_bounds () =
  (* Table 2's headline: at the tightest (Ld, Ad) corner of each grid
     our approach beats the redundancy baseline. *)
  List.iter
    (fun (g, ld, ad) ->
      let ours = Sweep.run Sweep.Ours g lib ~lds:[ ld ] ~ads:[ ad ] in
      let base = Sweep.run Sweep.Baseline g lib ~lds:[ ld ] ~ads:[ ad ] in
      match
        ( (Sweep.cell_at_exn ours ~ld ~ad).Sweep.reliability,
          (Sweep.cell_at_exn base ~ld ~ad).Sweep.reliability )
      with
      | Some o, Some b ->
        Alcotest.(check bool)
          (Printf.sprintf "%s (%d,%d): %.5f > %.5f" (Rchls_dfg.Dfg.name g) ld ad o b)
          true (o > b)
      | Some _, None -> () (* baseline infeasible: ours wins by default *)
      | None, _ -> Alcotest.fail "ours infeasible at a published tight cell")
    [ (Benchmarks.fir16, 10, 9); (Benchmarks.ewf, 13, 9); (Benchmarks.diffeq, 5, 11) ]

let test_baseline_catches_up_at_loose_area () =
  (* The crossover: with a loose enough area bound the duplication
     baseline closes the gap (negative cells appear in the paper too).
     Check the gap shrinks between the tightest and loosest area. *)
  let gap ad =
    let ours = Sweep.run Sweep.Ours Benchmarks.fir16 lib ~lds:[ 10 ] ~ads:[ ad ] in
    let base = Sweep.run Sweep.Baseline Benchmarks.fir16 lib ~lds:[ 10 ] ~ads:[ ad ] in
    match
      ( (Sweep.cell_at_exn ours ~ld:10 ~ad).Sweep.reliability,
        (Sweep.cell_at_exn base ~ld:10 ~ad).Sweep.reliability )
    with
    | Some o, Some b -> o -. b
    | Some o, None -> o
    | _ -> Alcotest.fail "ours infeasible"
  in
  Alcotest.(check bool) "gap shrinks with looser area" true (gap 13 < gap 9)

let test_combined_dominates_ours_on_average () =
  let avg approach g rows =
    let lds = List.sort_uniq compare (List.map (fun r -> r.Paper_data.ld) rows) in
    let ads = List.sort_uniq compare (List.map (fun r -> r.Paper_data.ad) rows) in
    let cells = Sweep.run approach g lib ~lds ~ads in
    let vals =
      List.filter_map
        (fun (r : Paper_data.table2_row) ->
          (Sweep.cell_at_exn cells ~ld:r.ld ~ad:r.ad).Sweep.reliability)
        rows
    in
    Rchls_util.Stats.mean vals
  in
  List.iter
    (fun (g, rows) ->
      Alcotest.(check bool) "combined >= ours" true
        (avg Sweep.Combined g rows >= avg Sweep.Ours g rows -. 1e-12))
    [ (Benchmarks.fir16, Paper_data.table2a_fir); (Benchmarks.diffeq, Paper_data.table2c_diffeq) ]

let test_fig8_series_monotone () =
  (* Figure 8: reliability rises with either bound. *)
  let lds = List.map fst Paper_data.fig8a_latency in
  let cells = Sweep.run Sweep.Ours Benchmarks.fir16 lib ~lds ~ads:[ 8 ] in
  let series =
    List.filter_map (fun ld -> (Sweep.cell_at_exn cells ~ld ~ad:8).Sweep.reliability) lds
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-12 && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone in latency" true (increasing series)

(* --- paper data self-checks --- *)

let test_paper_data_shape () =
  Alcotest.(check int) "9 FIR rows" 9 (List.length Paper_data.table2a_fir);
  Alcotest.(check int) "9 EWF rows" 9 (List.length Paper_data.table2b_ewf);
  Alcotest.(check int) "9 DiffEq rows" 9 (List.length Paper_data.table2c_diffeq);
  List.iter
    (fun (r : Paper_data.table2_row) ->
      Alcotest.(check bool) "values in (0,1)" true
        (r.ref3 > 0. && r.ref3 < 1. && r.ours > 0. && r.ours < 1. && r.combined > 0.
        && r.combined < 1.))
    (Paper_data.table2a_fir @ Paper_data.table2b_ewf @ Paper_data.table2c_diffeq)

let test_paper_internal_consistency () =
  (* The published FIR anchors decompose exactly over the Table-1
     reliabilities — the checks that validated our model reverse-
     engineering. *)
  Alcotest.(check (float 5e-6)) "0.48467 = 0.969^23" 0.48467 (0.969 ** 23.);
  Alcotest.(check (float 5e-6)) "0.82783 = 0.969^6" 0.82783 (0.969 ** 6.);
  Alcotest.(check (float 5e-6)) "0.90713 = 0.999^3*0.969^3" 0.90713
    ((0.999 ** 3.) *. (0.969 ** 3.));
  Alcotest.(check (float 5e-6)) "0.78943 = 0.999^16*0.969^7" 0.78943
    ((0.999 ** 16.) *. (0.969 ** 7.));
  Alcotest.(check (float 5e-6)) "0.45509 = 0.969^25" 0.45509 (0.969 ** 25.)

(* --- experiment generators --- *)

let test_generators_produce_tables () =
  (* The quick generators must run and mention their own captions; the
     heavyweight sweeps are covered by the bench run. *)
  let quick = [ "table1"; "fig2"; "fig5"; "fig7" ] in
  List.iter
    (fun id ->
      let f = List.assoc id Experiments.all in
      let out = f () in
      Alcotest.(check bool) (id ^ " non-empty") true (String.length out > 100))
    quick

let test_table1_generator_exact () =
  let out = Experiments.table1 () in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains out needle))
    [ "0.99900"; "0.96900"; "0.98702"; "Adder 3"; "Multiplier 2"; "59.460e-21" ]

let test_fig5_reports_paper_value () =
  let out = Experiments.fig5 () in
  Alcotest.(check bool) "0.82783 present" true (contains out "0.82783")

let () =
  Alcotest.run "experiments"
    [
      ( "sweep",
        [
          Alcotest.test_case "grid shape" `Quick test_sweep_grid_shape;
          Alcotest.test_case "envelope monotone" `Slow test_sweep_envelope_monotone;
          Alcotest.test_case "improvement pct" `Quick test_improvement_pct;
        ] );
      ( "paper claims",
        [
          Alcotest.test_case "ours wins at tight bounds" `Slow
            test_ours_beats_baseline_at_tight_bounds;
          Alcotest.test_case "baseline catches up" `Slow
            test_baseline_catches_up_at_loose_area;
          Alcotest.test_case "combined dominates" `Slow
            test_combined_dominates_ours_on_average;
          Alcotest.test_case "fig8 monotone" `Slow test_fig8_series_monotone;
        ] );
      ( "paper data",
        [
          Alcotest.test_case "shape" `Quick test_paper_data_shape;
          Alcotest.test_case "internal consistency" `Quick test_paper_internal_consistency;
        ] );
      ( "generators",
        [
          Alcotest.test_case "produce tables" `Slow test_generators_produce_tables;
          Alcotest.test_case "table1 exact" `Quick test_table1_generator_exact;
          Alcotest.test_case "fig5 paper value" `Slow test_fig5_reports_paper_value;
        ] );
    ]
