(* rchls — reliability-centric high-level synthesis CLI.

   Subcommands:
     synth        synthesize a benchmark or .dfg file under bounds
     sweep        explore a bounds grid for one approach
     characterize run the component characterization (Table 1)
     library      print or validate a resource library
     bench        list / dump the built-in benchmark DFGs
     experiment   regenerate one of the paper's tables/figures
     fuzz         run the generative differential fuzzing properties
     corpus       generate a versioned benchmark-corpus directory
     explore      frontier-guided Pareto exploration of bound planes
     serve        run the synthesis daemon (NDJSON over a socket)
     request      send API request lines to a running daemon

   The synth/sweep/fuzz subcommands are thin clients of the
   [Rchls_api] job schema: they construct the same typed requests the
   serve wire format carries and execute them in-process through
   [Rchls_experiments.Service] — one public surface, two transports.

   Cross-cutting flags: --stats (telemetry table), --trace-out FILE
   (Chrome trace-event JSON, or JSONL when FILE ends in .jsonl),
   --report json (machine-readable run report on stdout, human output
   on stderr) and --check (independent design-validity checking of
   every realized design). *)

open Cmdliner
module Library = Rchls_charlib.Library
module Benchmarks = Rchls_dfg.Benchmarks
module Dfg = Rchls_dfg.Dfg
module Parse = Rchls_dfg.Parse
module Rc = Rchls_core.Reliability_centric
module Design = Rchls_core.Design
module Experiments = Rchls_experiments.Experiments
module Sweep = Rchls_experiments.Sweep
module Explore = Rchls_experiments.Explore
module Corpus = Rchls_experiments.Corpus
module Diskcache = Rchls_util.Diskcache
module Report = Rchls_experiments.Report
module Loader = Rchls_experiments.Loader
module Service = Rchls_experiments.Service
module Telemetry = Rchls_util.Telemetry
module Trace = Rchls_util.Trace
module Json = Rchls_util.Json
module Check = Rchls_check.Check
module Fuzz = Rchls_check.Fuzz
module Request = Rchls_api.Request
module Response = Rchls_api.Response
module Server = Rchls_serve.Server
module Client = Rchls_serve.Client
module Dashboard = Rchls_serve.Dashboard

let load_library = Loader.load_library

(* --- common args --- *)

let graph_arg =
  let doc = "Benchmark name (fig4, fir16, ewf, diffeq, iir, ar) or path to a .dfg file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"GRAPH" ~doc)

let library_arg =
  let doc = "Resource library file (defaults to the paper's Table 1)." in
  Arg.(value & opt (some string) None & info [ "library"; "L" ] ~docv:"FILE" ~doc)

let ld_arg =
  let doc = "Latency bound in clock cycles." in
  Arg.(required & opt (some int) None & info [ "ld" ] ~docv:"CYCLES" ~doc)

let ad_arg =
  let doc = "Area bound in library units." in
  Arg.(required & opt (some int) None & info [ "ad" ] ~docv:"UNITS" ~doc)

let or_die = function
  | Ok v -> v
  | Error e ->
    Printf.eprintf "rchls: %s\n" e;
    exit 1

let stats_arg =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Print engine telemetry (scheduler/binder runs, evaluation-cache \
               hits, per-pass timings, span latency quantiles) after the run. \
               Goes to stderr under $(b,--report).")

let trace_out_arg =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Write the run's span/instant trace to $(docv) as Chrome \
               trace-event JSON (load in Perfetto or chrome://tracing; one \
               track per worker domain) — or, when $(docv) ends in \
               $(b,.jsonl), stream one structured JSON event per line.")

let report_arg =
  Arg.(value & opt (some (Arg.enum [ ("json", `Json) ])) None
       & info [ "report" ] ~docv:"FMT"
           ~doc:"Emit a machine-readable run report (schema \
                 rchls.run_report/1: result, counters, timers, histogram \
                 quantiles, input fingerprints) on stdout.  $(docv) must be \
                 $(b,json).  Human-readable output moves to stderr.")

let check_flag =
  Arg.(value & flag & info [ "check" ]
         ~doc:"Re-validate every design the engine realizes (and every \
               redundancy-protected design a sweep produces) with the \
               independent design-validity checker: precedence edges, \
               conflict-free binding, library membership and recomputed \
               objective totals.  A violation aborts the run with a \
               diagnostic; a summary count goes to stderr.")

(* Run [f ()] with the design checker installed; the summary goes to
   stderr so checked runs keep byte-identical stdout. *)
let with_check check f =
  if not check then f ()
  else begin
    Check.reset_stats ();
    Check.enable ();
    Fun.protect ~finally:Check.disable @@ fun () ->
    match f () with
    | v ->
      Printf.eprintf "rchls: check: %d designs validated, %d violations\n%!"
        (Check.designs_checked ())
        (Check.violations_found ());
      v
    | exception Failure msg ->
      Printf.eprintf "rchls: %s\n%!" msg;
      exit 3
  end

(* Run [f ()] on fresh telemetry and, under [--stats], print what the
   run accumulated — to stderr when stdout carries a JSON report. *)
let with_stats ?(err = false) stats f =
  Telemetry.reset ();
  let v = f () in
  if stats then begin
    let rendered = Telemetry.render () in
    if rendered <> "" then
      if err then Printf.eprintf "\n%s\n%!" rendered
      else Printf.printf "\n%s\n" rendered
  end;
  v

(* Run [f ()] with the requested trace sinks installed; the Chrome
   file is rendered after [f] returns (also on a failed synthesis —
   failure paths return an exit code instead of exiting inline so this
   finisher runs). *)
let with_tracing ?(extra_sinks = []) trace_out f =
  match trace_out with
  | None -> (
    match extra_sinks with [] -> f () | sinks -> Trace.with_sinks sinks f)
  | Some path when Filename.check_suffix path ".jsonl" ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> Trace.with_sinks (extra_sinks @ [ Trace.jsonl_sink oc ]) f)
  | Some path ->
    let c = Trace.collector () in
    let v = Trace.with_sinks (extra_sinks @ [ Trace.collector_sink c ]) f in
    Trace.write_chrome_file c path;
    Printf.eprintf "rchls: wrote %s\n%!" path;
    v

let print_report report = print_endline (Json.to_string ~pretty:true report)

(* --- synth --- *)

let strategy_arg =
  let strategy_conv =
    Arg.enum
      [
        ("best", Request.Best);
        ("figure6", Request.Figure6);
        ("bottom-up", Request.Bottom_up);
      ]
  in
  Arg.(value & opt strategy_conv Request.Best & info [ "strategy" ] ~docv:"STRATEGY"
         ~doc:"Search strategy: best (default), figure6, bottom-up.")

let strategy_name = function
  | Request.Best -> "best"
  | Request.Figure6 -> "figure6"
  | Request.Bottom_up -> "bottom-up"

let scheduler_arg =
  let scheduler_conv =
    Arg.enum
      [
        ("density", Request.Density);
        ("density-reference", Request.Density_reference);
        ("force-directed", Request.Force_directed);
      ]
  in
  Arg.(value & opt scheduler_conv Request.Density & info [ "scheduler" ] ~docv:"SCHED"
         ~doc:"Scheduler: density (the paper's, incremental), density-reference \
               (full-recompute oracle, same schedules) or force-directed.")

let scheduler_name = function
  | Request.Density -> "density"
  | Request.Density_reference -> "density-reference"
  | Request.Force_directed -> "force-directed"

let library_source = function
  | None -> Request.Lib_default
  | Some path -> Request.Lib_file path

let dot_arg =
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE"
         ~doc:"Write the scheduled data-flow graph as Graphviz to $(docv).")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the algorithm's decisions.")

(* The historical [--trace] decision printer, reimplemented as a sink
   over the engine's structured instant events (the typed callback
   path it replaces printed byte-identical lines). *)
let decision_printer (ev : Trace.event) =
  match ev.kind with
  | Trace.Instant ->
    let s k = Option.value ~default:"" (Trace.attr_string ev.attrs k) in
    let i k = Option.value ~default:0 (Trace.attr_int ev.attrs k) in
    (match ev.name with
    | "engine.initial" -> Printf.printf "* initial latency %d\n" (i "latency")
    | "engine.latency_downgrade" ->
      Printf.printf "* latency: %s %s -> %s (L=%d)\n" (s "node") (s "from") (s "to")
        (i "latency")
    | "engine.slack_exploited" ->
      Printf.printf "* slack: reschedule at L=%d (area %d)\n" (i "latency") (i "area")
    | "engine.area_downgrade" ->
      Printf.printf "* area: [%s] %s -> %s (area %d)\n" (s "nodes") (s "from") (s "to")
        (i "area")
    | "engine.refine_upgrade" ->
      Printf.printf "* refine: [%s] %s -> %s (R=%.5f)\n" (s "node") (s "from") (s "to")
        (Option.value ~default:0. (Trace.attr_float ev.attrs "reliability"))
    | _ -> ())
  | Trace.Begin | Trace.End -> ()

let synth_cmd =
  let run graph_spec lib_file ld ad strategy scheduler dot trace trace_out report stats
      check =
    let code =
      with_stats ~err:(report <> None) stats @@ fun () ->
      with_check check @@ fun () ->
      with_tracing ~extra_sinks:(if trace then [ decision_printer ] else []) trace_out
      @@ fun () ->
      let job =
        {
          Request.graph = Request.Named graph_spec;
          library = library_source lib_file;
          ld;
          ad;
          strategy;
          scheduler;
        }
      in
      let resolved = or_die (Service.resolve job.Request.graph job.Request.library) in
      let g = resolved.Service.graph and lib = resolved.Service.library in
      let args =
        [
          ("graph", Json.Str graph_spec);
          ("ld", Json.Int ld);
          ("ad", Json.Int ad);
          ("strategy", Json.Str (strategy_name strategy));
          ("scheduler", Json.Str (scheduler_name scheduler));
        ]
      in
      match or_die (Service.run_synth ~resolved job) with
      | Error f ->
        (match report with
        | Some `Json ->
          print_report
            (Report.make ~command:"synth" ~args ~graph:g ~library:lib
               ~result:(Report.failure_json f) ())
        | None -> Format.printf "%a@." Rc.pp_failure f);
        2
      | Ok d ->
        (match report with
        | Some `Json ->
          print_report
            (Report.make ~command:"synth" ~args ~graph:g ~library:lib
               ~result:(Report.design_json d) ())
        | None -> Format.printf "%a" Design.pp_report d);
        Option.iter
          (fun path ->
            let sched = Design.schedule d in
            Rchls_dfg.Dot.write_file
              ~step:(fun nd -> Some (Rchls_sched.Schedule.start sched nd.Dfg.id))
              g path;
            if report = None then Printf.printf "wrote %s\n" path
            else Printf.eprintf "rchls: wrote %s\n%!" path)
          dot;
        0
    in
    if code <> 0 then exit code
  in
  let doc = "Synthesize a data-flow graph under latency and area bounds." in
  Cmd.v (Cmd.info "synth" ~doc)
    Term.(
      const run $ graph_arg $ library_arg $ ld_arg $ ad_arg $ strategy_arg
      $ scheduler_arg $ dot_arg $ trace_arg $ trace_out_arg $ report_arg $ stats_arg
      $ check_flag)

(* --- anneal --- *)

let anneal_cmd =
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Annealer RNG seed.")
  in
  let moves_arg =
    Arg.(value & opt int 2000
         & info [ "moves" ] ~docv:"N" ~doc:"Moves attempted per chain.")
  in
  let chains_arg =
    Arg.(value & opt int 4
         & info [ "chains" ] ~docv:"N"
             ~doc:"Replica chains on the temperature ladder.")
  in
  let exchange_arg =
    Arg.(value & opt int 50
         & info [ "exchange" ] ~docv:"N"
             ~doc:"Moves between temperature-exchange attempts.")
  in
  let run graph_spec lib_file ld ad strategy scheduler seed moves chains exchange
      trace_out report stats check =
    let code =
      with_stats ~err:(report <> None) stats @@ fun () ->
      with_check check @@ fun () ->
      with_tracing trace_out @@ fun () ->
      let job =
        {
          Request.graph = Request.Named graph_spec;
          library = library_source lib_file;
          ld;
          ad;
          strategy;
          scheduler;
          seed;
          moves;
          chains;
          exchange;
        }
      in
      let resolved = or_die (Service.resolve job.Request.graph job.Request.library) in
      let g = resolved.Service.graph and lib = resolved.Service.library in
      let args =
        [
          ("graph", Json.Str graph_spec);
          ("ld", Json.Int ld);
          ("ad", Json.Int ad);
          ("strategy", Json.Str (strategy_name strategy));
          ("scheduler", Json.Str (scheduler_name scheduler));
          ("seed", Json.Int seed);
          ("moves", Json.Int moves);
          ("chains", Json.Int chains);
          ("exchange", Json.Int exchange);
        ]
      in
      match or_die (Service.run_anneal ~resolved job) with
      | Error f ->
        (match report with
        | Some `Json ->
          print_report
            (Report.make ~command:"anneal" ~args ~graph:g ~library:lib
               ~result:(Report.failure_json f) ())
        | None -> Format.printf "%a@." Rc.pp_failure f);
        2
      | Ok ((greedy, annealed, s) as r) ->
        (match report with
        | Some `Json ->
          print_report
            (Report.make ~command:"anneal" ~args ~graph:g ~library:lib
               ~result:(Response.payload_to_json (Service.payload_of_anneal (Ok r)))
               ())
        | None ->
          Printf.printf "greedy:   latency=%d area=%d R=%.12g\n" (Design.latency greedy)
            (Design.area greedy) (Design.reliability greedy);
          Printf.printf "annealed: latency=%d area=%d R=%.12g%s\n"
            (Design.latency annealed) (Design.area annealed)
            (Design.reliability annealed)
            (if s.Rchls_anneal.Anneal.improved then "  (improved)" else "  (greedy kept)");
          Printf.printf "anneal:   moves=%d accepted=%d pruned=%d exchanges=%d chains=%d\n"
            s.Rchls_anneal.Anneal.attempted s.Rchls_anneal.Anneal.accepted
            s.Rchls_anneal.Anneal.pruned s.Rchls_anneal.Anneal.exchanges
            s.Rchls_anneal.Anneal.chain_count;
          Format.printf "%a" Design.pp_report annealed);
        0
    in
    if code <> 0 then exit code
  in
  let doc =
    "Synthesize greedily, then improve the design with parallel-tempering \
     simulated annealing over version/schedule/binding moves."
  in
  Cmd.v (Cmd.info "anneal" ~doc)
    Term.(
      const run $ graph_arg $ library_arg $ ld_arg $ ad_arg $ strategy_arg
      $ scheduler_arg $ seed_arg $ moves_arg $ chains_arg $ exchange_arg
      $ trace_out_arg $ report_arg $ stats_arg $ check_flag)

(* --- sweep --- *)

let ints_arg name docv doc =
  let arg_info = Arg.info [ name ] ~docv ~doc in
  Arg.(required & opt (some (list int)) None & arg_info)

let approach_arg =
  let approach_conv =
    Arg.enum
      [
        ("ours", Request.Ours);
        ("baseline", Request.Baseline);
        ("combined", Request.Combined);
      ]
  in
  Arg.(value & opt approach_conv Request.Ours & info [ "approach" ] ~docv:"A"
         ~doc:"Approach: ours (default), baseline (ref [3] NMR), combined.")

let approach_name = function
  | Request.Baseline -> "baseline"
  | Request.Ours -> "ours"
  | Request.Combined -> "combined"

let sweep_cmd =
  let run graph_spec lib_file lds ads approach domains trace_out report stats check =
    with_stats ~err:(report <> None) stats @@ fun () ->
    with_check check @@ fun () ->
    with_tracing trace_out @@ fun () ->
    let job =
      {
        Request.graph = Request.Named graph_spec;
        library = library_source lib_file;
        lds;
        ads;
        approach;
        scheduler = Request.Density;
      }
    in
    let resolved = or_die (Service.resolve job.Request.graph job.Request.library) in
    let g = resolved.Service.graph and lib = resolved.Service.library in
    let cells = or_die (Service.run_sweep ~resolved ?domains job) in
    match report with
    | Some `Json ->
      let ints ns = Json.List (List.map (fun i -> Json.Int i) ns) in
      print_report
        (Report.make ~command:"sweep"
           ~args:
             [
               ("graph", Json.Str graph_spec);
               ("approach", Json.Str (approach_name approach));
               ("lds", ints lds);
               ("ads", ints ads);
             ]
           ~graph:g ~library:lib ~result:(Report.sweep_json cells) ())
    | None ->
      (* Render through the indexed grid view: same cells, but the
         order is pinned to (ld, ad) regardless of how the sweep
         produced them. *)
      let grid = Sweep.Grid.of_cells cells in
      let t = Rchls_util.Tablefmt.create [ "Ld"; "Ad"; "Reliability"; "Area" ] in
      List.iter
        (fun (c : Sweep.cell) ->
          Rchls_util.Tablefmt.add_row t
            [
              string_of_int c.ld;
              string_of_int c.ad;
              (match c.reliability with
              | Some r -> Rchls_util.Tablefmt.float_cell r
              | None -> "-");
              (match c.area with Some a -> string_of_int a | None -> "-");
            ])
        (Sweep.Grid.cells grid);
      Rchls_util.Tablefmt.print t
  in
  let doc = "Sweep a latency x area bounds grid." in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const run $ graph_arg $ library_arg
      $ ints_arg "lds" "L1,L2,..." "Latency bounds to sweep."
      $ ints_arg "ads" "A1,A2,..." "Area bounds to sweep."
      $ approach_arg
      $ Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
               ~doc:"Worker domains for the grid (default: $(b,RCHLS_DOMAINS) \
                     or the recommended domain count; 1 = sequential).")
      $ trace_out_arg $ report_arg $ stats_arg $ check_flag)

(* --- characterize --- *)

let characterize_cmd =
  let run measured width vectors seed ci_target domains trace_out stats =
    with_stats stats @@ fun () ->
    with_tracing trace_out @@ fun () ->
    if measured then begin
      let fault_config =
        {
          Rchls_soft_error.Fault_sim.Campaign.default with
          vectors;
          seed;
          ci_target;
          domains;
        }
      in
      print_string (Experiments.table1_measured ~width ~fault_config ())
    end
    else begin
      print_string (Experiments.table1 ());
      print_string (Experiments.fig2 ())
    end
  in
  let measured =
    Arg.(value & flag & info [ "measured" ]
           ~doc:"Run the full substitute pipeline (netlist generation + \
                 fault-injection campaigns) instead of the published Qcritical \
                 inputs.")
  in
  let width =
    Arg.(value & opt int 12 & info [ "width" ] ~docv:"BITS" ~doc:"Adder bit width.")
  in
  let vectors =
    Arg.(value & opt int 48 & info [ "vectors" ] ~docv:"N"
           ~doc:"Vectors per node (the cap when $(b,--ci-target) is set).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
           ~doc:"Campaign PRNG seed; results are deterministic per seed, \
                 independent of the domain count.")
  in
  let ci_target =
    Arg.(value & opt (some float) None & info [ "ci-target" ] ~docv:"H"
           ~doc:"Stop a node early once the 95% Wilson-interval half-width of \
                 its logical derating reaches $(docv) (checked every 63 \
                 vectors).  Off by default, which keeps the output exactly \
                 reproducible at a given vector count.")
  in
  let domains =
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
           ~doc:"Worker domains for the campaign node fan-out (default: \
                 $(b,RCHLS_DOMAINS) or the recommended domain count; 1 = \
                 sequential).  Never changes results, only wall-clock.")
  in
  let doc = "Regenerate the component characterization (Table 1 / Figure 2)." in
  Cmd.v (Cmd.info "characterize" ~doc)
    Term.(
      const run $ measured $ width $ vectors $ seed $ ci_target $ domains
      $ trace_out_arg $ stats_arg)

(* --- library --- *)

let library_cmd =
  let run lib_file stats =
    with_stats stats @@ fun () ->
    let lib = or_die (load_library lib_file) in
    print_string (Library.to_text lib)
  in
  let doc = "Print (and thereby validate) a resource library." in
  Cmd.v (Cmd.info "library" ~doc) Term.(const run $ library_arg $ stats_arg)

(* --- bench --- *)

let bench_cmd =
  let run which stats =
    with_stats stats @@ fun () ->
    match which with
    | None ->
      List.iter
        (fun (name, g) -> Format.printf "%-8s %a@." name Dfg.pp_summary g)
        Benchmarks.all
    | Some name -> (
      match Benchmarks.find name with
      | Some g -> print_string (Parse.to_text g)
      | None ->
        Printf.eprintf "unknown benchmark %S\n" name;
        exit 1)
  in
  let which =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME"
           ~doc:"Benchmark to dump in .dfg form; omit to list all.")
  in
  let doc = "List the built-in benchmarks or dump one as .dfg text." in
  Cmd.v (Cmd.info "bench" ~doc) Term.(const run $ which $ stats_arg)

(* --- experiment --- *)

let experiment_cmd =
  let run ids trace_out report stats check =
    let ids = if ids = [ "all" ] then List.map fst Experiments.all else ids in
    List.iter
      (fun id ->
        if not (List.mem_assoc id Experiments.all) then begin
          Printf.eprintf "unknown experiment %S; available: %s\n" id
            (String.concat ", " (List.map fst Experiments.all @ [ "all" ]));
          exit 1
        end)
      ids;
    with_check check @@ fun () ->
    with_tracing trace_out @@ fun () ->
    (* Telemetry is reset between experiments so each report (and each
       [--stats] block) covers exactly one table/figure. *)
    let reports =
      List.map
        (fun id ->
          Telemetry.reset ();
          let text = (List.assoc id Experiments.all) () in
          let r =
            match report with
            | Some `Json ->
              Some
                (Report.make ~command:"experiment"
                   ~args:[ ("id", Json.Str id) ]
                   ~result:
                     (Json.Obj
                        [ ("experiment", Json.Str id); ("output", Json.Str text) ])
                   ())
            | None ->
              print_string text;
              None
          in
          if stats then begin
            let rendered = Telemetry.render () in
            if rendered <> "" then
              if report <> None then Printf.eprintf "\n[%s]\n%s\n%!" id rendered
              else Printf.printf "\n[%s]\n%s\n" id rendered
          end;
          r)
        ids
    in
    match List.filter_map Fun.id reports with
    | [] -> ()
    | [ r ] -> print_report r
    | rs ->
      (* Several experiments: one compact report per line (JSONL). *)
      List.iter (fun r -> print_endline (Json.to_string r)) rs
  in
  let ids =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID"
           ~doc:"Experiment ids: table1, fig2, fig5, fig7, fig8a, fig8b, table2a, \
                 table2b, table2c, fig9 — or $(b,all).  Telemetry resets between \
                 ids, so $(b,--stats) and $(b,--report) cover each in isolation.")
  in
  let doc = "Regenerate the paper's tables or figures." in
  Cmd.v (Cmd.info "experiment" ~doc)
    Term.(const run $ ids $ trace_out_arg $ report_arg $ stats_arg $ check_flag)

(* --- fuzz --- *)

let fuzz_cmd =
  let run seed cases max_nodes props trace_out report stats =
    let code =
      with_stats ~err:(report <> None) stats @@ fun () ->
      with_tracing trace_out @@ fun () ->
      let job = { Request.seed; cases; max_nodes; properties = props } in
      let outcomes =
        match Service.run_fuzz job with
        | Ok outcomes -> outcomes
        | Error m ->
          Printf.eprintf "rchls: %s\n" m;
          exit 1
      in
      (match report with
      | Some `Json ->
        print_report
          (Report.make ~command:"fuzz"
             ~args:
               [
                 ("seed", Json.Int seed);
                 ("cases", Json.Int cases);
                 ("max_nodes", Json.Int max_nodes);
               ]
             ~result:(Response.payload_to_json (Service.payload_of_fuzz outcomes))
             ())
      | None ->
        List.iter (fun o -> Format.printf "%a@." Fuzz.pp_outcome o) outcomes);
      if Fuzz.all_passed outcomes then 0 else 2
    in
    if code <> 0 then exit code
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
           ~doc:"Fuzzing PRNG seed.  Every case is reproducible from (seed, \
                 property, case index) alone.")
  in
  let cases =
    Arg.(value & opt int 250 & info [ "cases" ] ~docv:"N"
           ~doc:"Cases per property.")
  in
  let max_nodes =
    Arg.(value & opt int 12 & info [ "max-nodes" ] ~docv:"N"
           ~doc:"Largest generated graph.")
  in
  let props =
    Arg.(value & opt (some (list string)) None & info [ "properties" ] ~docv:"P1,P2,..."
           ~doc:(Printf.sprintf "Properties to run (default: all): %s."
                   (String.concat ", " (Fuzz.property_names ()))))
  in
  let doc =
    "Fuzz the synthesis stack: random designs, differential scheduler oracles, \
     metamorphic reliability properties, independent validity checking."
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ seed $ cases $ max_nodes $ props $ trace_out_arg $ report_arg
      $ stats_arg)

(* --- corpus --- *)

let corpus_cmd =
  let run dir seed count =
    let t =
      try Corpus.generate ~dir ~seed ~count
      with Invalid_argument m | Sys_error m ->
        Printf.eprintf "rchls: %s\n" m;
        exit 1
    in
    let tbl = Rchls_util.Tablefmt.create [ "File"; "Family"; "Nodes"; "Edges" ] in
    List.iter
      (fun (e : Corpus.entry) ->
        Rchls_util.Tablefmt.add_row tbl
          [ e.file; e.family; string_of_int e.nodes; string_of_int e.edges ])
      t.Corpus.entries;
    Rchls_util.Tablefmt.print tbl;
    Printf.printf "wrote %d graphs + %s to %s (seed %d)\n"
      (List.length t.Corpus.entries)
      Corpus.manifest_file dir seed
  in
  let dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
           ~doc:"Corpus directory (created as needed).  Each graph lands as a \
                 .dfg file next to a versioned $(b,MANIFEST.json).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
           ~doc:"Generation seed.  Graph $(i,i) draws from a private stream \
                 keyed (seed, i), so regenerating with a larger $(b,--count) \
                 extends the corpus in place.")
  in
  let count =
    Arg.(value & opt int 20 & info [ "count" ] ~docv:"N"
           ~doc:"Number of graphs; structured families (chain, fanout, fir, \
                 diffeq) round-robin.")
  in
  let doc = "Generate a versioned benchmark-corpus directory of .dfg graphs." in
  Cmd.v (Cmd.info "corpus" ~doc) Term.(const run $ dir $ seed $ count)

(* --- explore --- *)

(* One explore target: either a corpus directory (every member graph)
   or a single benchmark name / .dfg path. *)
let explore_targets spec =
  if Sys.file_exists (Filename.concat spec Corpus.manifest_file) then begin
    let corpus = or_die (Corpus.load ~dir:spec) in
    List.map
      (fun (e : Corpus.entry) ->
        (e.graph_name, or_die (Corpus.load_graph corpus e)))
      corpus.Corpus.entries
  end
  else [ (Filename.remove_extension (Filename.basename spec),
          or_die (Loader.load_graph spec)) ]

let explore_cmd =
  let run target lib_file lds ads approach domains reference verify cache_dir
      trace_out stats check =
    with_stats ~err:true stats @@ fun () ->
    with_check check @@ fun () ->
    with_tracing trace_out @@ fun () ->
    let lib = or_die (load_library lib_file) in
    let library_text = Library.to_text lib in
    let disk =
      Option.map (fun dir -> or_die (Diskcache.open_dir dir)) cache_dir
    in
    let lds = Option.value ~default:[] lds and ads = Option.value ~default:[] ads in
    let run_and_emit name g ~lds ~ads appr ~key =
      let cache = Rchls_core.Engine.create_cache () in
      let run_pruned () =
        Sweep.run_with_stats ?domains ~cache appr g lib ~lds ~ads
      in
      let run_exhaustive () =
        let cells = Sweep.run_reference ?domains ~cache appr g lib ~lds ~ads in
        let n = List.length cells in
        (cells, { Explore.cells = n; evaluated = n; derived = 0 })
      in
      let cells, exp_stats =
        if verify then begin
          let pc, ps = run_pruned () in
          let rc, _ = run_exhaustive () in
          if pc <> rc then begin
            Printf.eprintf
              "rchls: %s: pruned sweep diverges from the exhaustive \
               reference\n"
              name;
            exit 3
          end;
          (pc, ps)
        end
        else if reference then run_exhaustive ()
        else run_pruned ()
      in
      let payload =
        Service.payload_of_explore (Explore.frontier cells, exp_stats)
      in
      let payload_json = Json.to_string (Response.payload_to_json payload) in
      (match (disk, key) with
      | Some d, Some k -> Diskcache.add d k payload_json
      | _ -> ());
      print_endline
        (Response.assemble_raw ~id:(Some name) ~cache:None payload_json);
      Printf.eprintf
        "rchls: %s: %d frontier points, evaluated %d of %d cells (%d derived)\n%!"
        name
        (match payload with
        | Response.Explore_frontier e -> List.length e.Response.points
        | _ -> 0)
        exp_stats.Explore.evaluated exp_stats.Explore.cells
        exp_stats.Explore.derived
    in
    let explore_one (name, g) =
      let graph_text = Parse.to_text g in
      let planned = lazy (Explore.plan g lib) in
      let lds = match lds with [] -> fst (Lazy.force planned) | l -> l in
      let ads = match ads with [] -> snd (Lazy.force planned) | l -> l in
      let appr = Service.approach_of_api approach in
      let job =
        Request.Explore
          {
            Request.graph = Request.Inline graph_text;
            library = Request.Lib_inline library_text;
            lds;
            ads;
            approach;
            scheduler = Request.Density;
          }
      in
      let key = Request.cache_key ~graph_text ~library_text job in
      let cached =
        match (disk, key) with
        | Some d, Some k -> Option.map (fun v -> (k, v)) (Diskcache.find d k)
        | _ -> None
      in
      match cached with
      | Some (k, payload_json) -> (
        (* Resumable runs revalidate disk entries through the strict
           decoder; a stale or foreign file is recomputed, not
           trusted. *)
        match
          Result.bind (Json.of_string payload_json) Response.payload_of_json
        with
        | Ok _ ->
          print_endline
            (Response.assemble_raw ~id:(Some name)
               ~cache:
                 (Some
                    {
                      Response.tier = Response.Disk;
                      key = Rchls_util.Fnv.to_hex k;
                    })
               payload_json);
          Printf.eprintf "rchls: %s: cached (%d-cell plane)\n%!" name
            (List.length lds * List.length ads)
        | Error _ -> run_and_emit name g ~lds ~ads appr ~key)
      | None -> run_and_emit name g ~lds ~ads appr ~key
    in
    List.iter explore_one (explore_targets target)
  in
  let target =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET"
           ~doc:"A corpus directory (from $(b,rchls corpus) — every member \
                 graph is explored), a benchmark name or a .dfg file.")
  in
  let lds =
    Arg.(value & opt (some (list int)) None & info [ "lds" ] ~docv:"L1,L2,..."
           ~doc:"Latency bounds (default: planned automatically from the \
                 graph and library).")
  in
  let ads =
    Arg.(value & opt (some (list int)) None & info [ "ads" ] ~docv:"A1,A2,..."
           ~doc:"Area bounds (default: planned automatically).")
  in
  let domains =
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
           ~doc:"Worker domains for the latency-row fan-out (default: \
                 $(b,RCHLS_DOMAINS) or the recommended domain count; 1 = \
                 sequential).  Never changes output.")
  in
  let reference =
    Arg.(value & flag & info [ "reference" ]
           ~doc:"Synthesize every cell exhaustively (the oracle) instead of \
                 pruning by certified area intervals.  The frontier is \
                 identical; only the evaluated/derived statistics differ.")
  in
  let verify =
    Arg.(value & flag & info [ "verify" ]
           ~doc:"Run both the pruned explorer and the exhaustive reference \
                 and abort (exit 3) unless their grids agree cell-for-cell.  \
                 Output is the pruned run's.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Persist each graph's frontier payload under its response \
                 cache key in $(docv); re-running skips graphs already \
                 explored (resumable corpus sweeps).")
  in
  let doc =
    "Frontier-guided Pareto exploration: sweep bound planes with \
     dominance-pruned synthesis and print each graph's (latency, area, \
     reliability) frontier as rchls.api/1 NDJSON."
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(
      const run $ target $ library_arg $ lds $ ads $ approach_arg $ domains
      $ reference $ verify $ cache_dir $ trace_out_arg $ stats_arg $ check_flag)

(* --- serve --- *)

let socket_arg =
  Arg.(value & opt string "rchls.sock" & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket path (ignored under $(b,--tcp)).")

let tcp_arg =
  Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT"
         ~doc:"Listen on 127.0.0.1:$(docv) instead of a Unix socket \
               (0 = ephemeral; the bound port is printed on stderr).")

let serve_addr socket tcp =
  match tcp with
  | Some port -> Server.Tcp ("127.0.0.1", port)
  | None -> Server.Unix_socket socket

(* [--metrics ADDR]: an integer is a loopback TCP port, anything else
   a Unix-domain socket path — same address vocabulary as the main
   listener. *)
let metrics_addr spec =
  match int_of_string_opt spec with
  | Some port -> Server.Tcp ("127.0.0.1", port)
  | None -> Server.Unix_socket spec

let serve_cmd =
  let run socket tcp cache_dir cache_entries domains batch_max queue_max metrics
      access_log access_log_max_bytes trace_out stats =
    Telemetry.reset ();
    with_tracing trace_out @@ fun () ->
    let config =
      {
        Server.addr = serve_addr socket tcp;
        cache_dir;
        cache_entries;
        domains;
        batch_max;
        queue_max;
        metrics = Option.map metrics_addr metrics;
        access_log = Option.map (fun p -> (p, access_log_max_bytes)) access_log;
      }
    in
    match Server.start config with
    | Error e ->
      Printf.eprintf "rchls: %s\n" e;
      exit 1
    | Ok server ->
      (match config.Server.addr with
      | Server.Tcp (host, _) ->
        Printf.eprintf "rchls: serving on %s:%d\n%!" host
          (Option.value ~default:0 (Server.port server))
      | Server.Unix_socket path -> Printf.eprintf "rchls: serving on %s\n%!" path);
      (match (config.Server.metrics, Server.metrics_port server) with
      | Some (Server.Tcp (host, _)), Some port ->
        Printf.eprintf "rchls: metrics on http://%s:%d/\n%!" host port
      | Some (Server.Unix_socket path), _ ->
        Printf.eprintf "rchls: metrics on %s\n%!" path
      | _ -> ());
      let stop = Atomic.make false in
      let request_stop _ = Atomic.set stop true in
      Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
      while not (Atomic.get stop) do
        try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      Printf.eprintf "rchls: shutting down\n%!";
      Server.stop server;
      if stats then begin
        let rendered = Telemetry.render () in
        if rendered <> "" then Printf.eprintf "\n%s\n%!" rendered
      end
  in
  let cache_dir =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Enable the persistent response-cache tier rooted at $(docv) \
                 (entries survive daemon restarts; see DESIGN.md par. 12).")
  in
  let cache_entries =
    Arg.(value & opt int 4096 & info [ "cache-entries" ] ~docv:"N"
           ~doc:"Entry bound for each response-cache tier.")
  in
  let domains =
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
           ~doc:"Worker domains per batch (default: $(b,RCHLS_DOMAINS) or the \
                 recommended domain count).  Responses are independent of it.")
  in
  let batch_max =
    Arg.(value & opt int 8 & info [ "batch-max" ] ~docv:"N"
           ~doc:"Jobs computed per scheduler round.")
  in
  let queue_max =
    Arg.(value & opt int 64 & info [ "queue-max" ] ~docv:"N"
           ~doc:"Queued-job bound; further requests answer the \
                 $(b,overloaded) error until the queue drains.")
  in
  let metrics =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"ADDR"
           ~doc:"Serve a Prometheus text scrape endpoint on $(docv): a port \
                 number binds 127.0.0.1:$(docv) (0 = ephemeral, printed on \
                 stderr), anything else is a Unix-socket path.  Any request \
                 path answers the exposition; $(b,/json) answers the JSON \
                 snapshot.")
  in
  let access_log =
    Arg.(value & opt (some string) None & info [ "access-log" ] ~docv:"FILE"
           ~doc:"Append one JSON line per request to $(docv) (id, kind, cache \
                 tier, queue/exec/total ns, bytes, status).  Admin kinds \
                 (ping, stats, health) are not logged.")
  in
  let access_log_max_bytes =
    Arg.(value & opt int (64 * 1024 * 1024)
         & info [ "access-log-max-bytes" ] ~docv:"N"
             ~doc:"Rotate the access log ($(b,FILE) to $(b,FILE.1)) before it \
                   would exceed $(docv) bytes.")
  in
  let doc = "Run the synthesis daemon (rchls.api/1 NDJSON over a socket)." in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ tcp_arg $ cache_dir $ cache_entries $ domains
      $ batch_max $ queue_max $ metrics $ access_log $ access_log_max_bytes
      $ trace_out_arg $ stats_arg)

(* --- request --- *)

let request_cmd =
  let run socket tcp verbose timeout file =
    let client =
      or_die
        (match tcp with
        | Some port -> Client.connect_tcp ~host:"127.0.0.1" ~port
        | None -> Client.connect_unix socket)
    in
    Option.iter (Client.set_receive_timeout client) timeout;
    let ic =
      match file with
      | None | Some "-" -> stdin
      | Some path ->
        if Sys.file_exists path then open_in path
        else begin
          Printf.eprintf "rchls: no such file %S\n" path;
          exit 1
        end
    in
    (* One call per input line, in order; the exit code reflects the
       worst response seen. *)
    let code = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then begin
           (match Client.send_raw client line with
           | Ok () -> ()
           | Error e ->
             Printf.eprintf "rchls: %s\n" e;
             exit 1);
           match Client.recv_raw client with
           | Error e ->
             Printf.eprintf "rchls: %s\n" e;
             exit 1
           | Ok reply ->
             print_endline reply;
             (match Response.of_string reply with
             | Ok ({ Response.result; _ } as r) ->
               if verbose then begin
                 let tier =
                   match r.Response.cache with
                   | Some { Response.tier = Response.Memory; _ } -> "memory"
                   | Some { Response.tier = Response.Disk; _ } -> "disk"
                   | None -> "computed"
                 in
                 let timing =
                   match r.Response.timing with
                   | Some t ->
                     Printf.sprintf " total=%s queue=%s exec=%s"
                       (Telemetry.format_ns (Int64.of_int t.Response.total_ns))
                       (Telemetry.format_ns (Int64.of_int t.Response.queue_ns))
                       (Telemetry.format_ns (Int64.of_int t.Response.exec_ns))
                   | None -> ""
                 in
                 Printf.eprintf "rchls: id=%s status=%s tier=%s%s\n%!"
                   (Option.value ~default:"-" r.Response.id)
                   (match result with
                   | Ok _ -> "ok"
                   | Error e -> Response.error_code_name e.Response.code)
                   tier timing
               end;
               (match result with Ok _ -> () | Error _ -> code := 2)
             | Error _ -> code := max !code 1)
         end
       done
     with End_of_file -> ());
    Client.close client;
    if !code <> 0 then exit !code
  in
  let file =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"File of request lines (rchls.api/1 NDJSON); omit or use \
                 $(b,-) for stdin.  Responses print to stdout, one line per \
                 request.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ]
           ~doc:"Print per-response metadata to stderr: request id, status, \
                 cache tier (memory/disk/computed) and the server-side \
                 latency breakdown from the response envelope.")
  in
  let timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECS"
           ~doc:"Fail (exit 1) if the daemon does not answer a request \
                 within $(docv) seconds, instead of blocking forever.")
  in
  let doc = "Send API request lines to a running rchls serve daemon." in
  Cmd.v (Cmd.info "request" ~doc)
    Term.(const run $ socket_arg $ tcp_arg $ verbose $ timeout $ file)

(* --- top --- *)

let top_cmd =
  let run socket tcp interval iterations =
    let client =
      or_die
        (match tcp with
        | Some port -> Client.connect_tcp ~host:"127.0.0.1" ~port
        | None -> Client.connect_unix socket)
    in
    let call job =
      match
        Client.call client { Request.id = Some (Request.job_kind job); job }
      with
      | Error e ->
        Printf.eprintf "rchls: %s\n" e;
        exit 1
      | Ok { Response.result = Error e; _ } ->
        Printf.eprintf "rchls: server error: %s\n" e.Response.message;
        exit 2
      | Ok { Response.result = Ok payload; _ } -> payload
    in
    let poll () =
      let stats =
        match call Request.Stats with
        | Response.Stats_snapshot s -> s
        | _ ->
          Printf.eprintf "rchls: unexpected payload for stats\n";
          exit 2
      in
      let health =
        match call Request.Health with
        | Response.Health_report h -> Some h
        | _ -> None
      in
      (stats, health)
    in
    let clear = Unix.isatty Unix.stdout in
    let stop = Atomic.make false in
    let request_stop _ = Atomic.set stop true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    let prev = ref None in
    let prev_at = ref (Unix.gettimeofday ()) in
    let frames = ref 0 in
    (try
       while
         (not (Atomic.get stop))
         && (iterations = 0 || !frames < iterations)
       do
         let stats, health = poll () in
         let now = Unix.gettimeofday () in
         let dt_s = now -. !prev_at in
         let frame = Dashboard.render ?prev:!prev ?health ~dt_s stats in
         if clear then print_string "\x1b[2J\x1b[H";
         print_string frame;
         flush stdout;
         prev := Some stats;
         prev_at := now;
         incr frames;
         if iterations = 0 || !frames < iterations then
           try Unix.sleepf interval
           with Unix.Unix_error (Unix.EINTR, _, _) -> ()
       done
     with Unix.Unix_error (Unix.EINTR, _, _) -> ());
    Client.close client
  in
  let interval =
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SECONDS"
           ~doc:"Seconds between polls of the daemon's $(b,stats) kind.")
  in
  let iterations =
    Arg.(value & opt int 0 & info [ "iterations" ] ~docv:"N"
           ~doc:"Render $(docv) frames and exit (0 = run until interrupted).  \
                 The first frame shows cumulative totals, later frames \
                 interval rates.")
  in
  let doc = "Live dashboard for a running rchls serve daemon." in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(const run $ socket_arg $ tcp_arg $ interval $ iterations)

let () =
  let doc = "reliability-centric high-level synthesis (DATE 2005 reproduction)" in
  let info = Cmd.info "rchls" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            synth_cmd;
            anneal_cmd;
            sweep_cmd;
            characterize_cmd;
            library_cmd;
            bench_cmd;
            experiment_cmd;
            fuzz_cmd;
            corpus_cmd;
            explore_cmd;
            serve_cmd;
            request_cmd;
            top_cmd;
          ]))
