(* Run the full substitute characterization pipeline on the generated
   adder netlists: build each architecture, inject faults, derive the
   SER chain and print the per-node detail that Table 1 summarizes.

   Run with: dune exec examples/characterize_adders.exe *)

module Netlist = Rchls_netlist.Netlist
module Delay = Rchls_netlist.Delay
module Catalog = Rchls_circuits.Catalog
module Ser = Rchls_soft_error.Ser
module Fault_sim = Rchls_soft_error.Fault_sim
module Stats = Rchls_util.Stats
module Tablefmt = Rchls_util.Tablefmt

let () =
  let width = 8 in
  Printf.printf "Characterizing %d-bit adders (Monte-Carlo, 64 vectors/node)\n\n" width;
  let t =
    Tablefmt.create
      ~aligns:[ Tablefmt.Left; Right; Right; Right; Right; Right; Right ]
      [
        "Architecture"; "Gates"; "Area (GE)"; "Delay (ps)"; "Depth";
        "Mean derating"; "Total SER";
      ]
  in
  List.iter
    (fun (entry : Catalog.entry) ->
      let nl = entry.build ~width in
      let analysis =
        Ser.analyze ~fault_config:{ Fault_sim.Campaign.default with vectors = 64 } nl
      in
      let deratings =
        List.map (fun (n : Ser.node_ser) -> n.logical_derating) analysis.Ser.nodes
      in
      Tablefmt.add_row t
        [
          entry.description;
          string_of_int (Netlist.gate_count nl);
          Printf.sprintf "%.0f" (Netlist.area nl);
          Printf.sprintf "%.0f" (Delay.critical_path_ps nl);
          string_of_int (Netlist.logic_depth nl);
          Printf.sprintf "%.3f" (Stats.mean deratings);
          Printf.sprintf "%.3e" analysis.Ser.total_ser;
        ])
    (Catalog.of_family Catalog.Adder);
  Tablefmt.print t;
  print_endline "";
  print_endline
    "Mean derating = fraction of injected single-event upsets that reach an\n\
     output (1 - logical masking).  The ripple-carry adder is smallest and\n\
     slowest; the prefix adders trade area and node count for logic depth.";
  (* Dump one netlist so the structural Verilog can be inspected. *)
  let rca = (Option.get (Catalog.find "rca")).Catalog.build ~width:4 in
  print_endline "\nStructural Verilog of the 4-bit ripple-carry adder:\n";
  print_string (Rchls_netlist.Verilog.to_string rca)
