(* The elliptic-wave-filter face-off of the paper's final experiment:
   reliability-centric version selection vs the NMR redundancy baseline
   (ref [3]) vs the combined approach, across area budgets.

   Run with: dune exec examples/ewf_vs_redundancy.exe *)

module Benchmarks = Rchls_dfg.Benchmarks
module Library = Rchls_charlib.Library
module Sweep = Rchls_experiments.Sweep
module Tablefmt = Rchls_util.Tablefmt

let () =
  let g = Benchmarks.ewf in
  let lib = Library.table1 in
  let ld = 14 in
  Printf.printf "EWF (25 operations), latency bound %d cycles\n\n" ld;
  let ads = [ 7; 8; 9; 10; 11; 12; 14; 16; 20 ] in
  let base = Sweep.run Sweep.Baseline g lib ~lds:[ ld ] ~ads in
  let ours = Sweep.run Sweep.Ours g lib ~lds:[ ld ] ~ads in
  let comb = Sweep.run Sweep.Combined g lib ~lds:[ ld ] ~ads in
  let t =
    Tablefmt.create
      ~aligns:[ Tablefmt.Right; Right; Right; Right; Left ]
      [ "Ad"; "Ref[3]"; "Ours"; "Combined"; "Who wins" ]
  in
  List.iter
    (fun ad ->
      let fmt = function None -> "-" | Some r -> Tablefmt.float_cell r in
      let at cells = (Sweep.cell_at_exn cells ~ld ~ad).Sweep.reliability in
      let b = at base and o = at ours in
      let verdict =
        match (b, o) with
        | Some b, Some o when o > b -> "version selection"
        | Some _, Some _ -> "redundancy"
        | None, Some _ -> "version selection (only feasible)"
        | Some _, None -> "redundancy (only feasible)"
        | None, None -> "neither feasible"
      in
      Tablefmt.add_row t [ string_of_int ad; fmt b; fmt o; fmt (at comb); verdict ])
    ads;
  Tablefmt.print t;
  print_endline "";
  print_endline
    "The paper's final-experiment conclusion reproduces: version selection wins\n\
     under tight area bounds (there is no room for spare modules), while\n\
     redundancy catches up and eventually overtakes once the budget allows\n\
     duplicating the cheap fast units.  The combined approach always improves\n\
     on version selection alone."
